package storage

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// frameKey identifies a cached page across files.
type frameKey struct {
	file *PagedFile
	page PageID
}

// frame is one buffer-pool slot.
type frame struct {
	key   frameKey
	data  [PageSize]byte
	pins  int
	dirty bool
	used  bool // clock reference bit

	// loading is non-nil while a cache miss is filling data from disk.
	// Concurrent getters of the same page pin the frame, drop the shard
	// lock, and wait for the channel to close; loadErr (written before the
	// close, so the close publishes it) reports how the fill ended.
	loading chan struct{}
	loadErr error
}

// poolShard is one lock domain of the buffer pool: its own frame map,
// clock list and hand. budget is how many frames the shard may own;
// eviction pressure moves budget between shards (see stealBudget), with
// the invariant len(clock) <= budget per shard and sum(budget) == pool
// capacity, so the pool never materializes more than capacity frames.
type poolShard struct {
	mu     sync.Mutex
	frames map[frameKey]*frame
	clock  []*frame
	hand   int
	budget int
}

// BufferPool caches pages with pin/unpin semantics and clock eviction.
// Dirty pages are never evicted (no-steal); FlushFile persists them at
// checkpoints. The pool is safe for concurrent use; the paper's parallel
// query plans scan through it from multiple goroutines ("with a warm
// buffer pool", Section 5.3.3).
//
// The pool is sharded: pages hash (by file and page id) onto
// power-of-two many shards, each with its own mutex, so parallel scans
// touching different pages never contend on a single lock. Cache-miss
// disk reads happen outside the shard lock behind a per-frame fill
// latch: readers of the same in-flight page wait on the latch, readers
// of other pages in the same shard proceed.
type BufferPool struct {
	shards   []poolShard
	mask     uint64
	capacity int

	hits, misses, evictions atomic.Int64
}

// PoolStats is a point-in-time snapshot of the pool's counters.
type PoolStats struct {
	Hits, Misses, Evictions int64
}

// HitRate returns hits / (hits + misses), or 0 with no traffic.
func (s PoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Sub returns the counter deltas since an earlier snapshot.
func (s PoolStats) Sub(earlier PoolStats) PoolStats {
	return PoolStats{
		Hits:      s.Hits - earlier.Hits,
		Misses:    s.Misses - earlier.Misses,
		Evictions: s.Evictions - earlier.Evictions,
	}
}

// NewBufferPool returns a pool caching up to capacity pages, with a
// shard count sized to the machine.
func NewBufferPool(capacity int) *BufferPool {
	return NewBufferPoolSharded(capacity, 0)
}

// NewBufferPoolSharded returns a pool caching up to capacity pages
// split across the given number of shards (rounded up to a power of
// two). shards <= 0 selects a default based on GOMAXPROCS, capped so
// each shard still has a useful number of frames.
func NewBufferPoolSharded(capacity, shards int) *BufferPool {
	if capacity < 8 {
		capacity = 8
	}
	if shards <= 0 {
		// Oversubscribe shards vs cores so random page hashes rarely
		// collide on a lock even when every core runs a scan worker.
		shards = 4 * runtime.GOMAXPROCS(0)
		if shards < 8 {
			shards = 8
		}
	}
	n := 1
	for n < shards && n < 64 {
		n <<= 1
	}
	// Keep at least 4 frames of budget per shard on average.
	for n > 1 && capacity/n < 4 {
		n >>= 1
	}
	bp := &BufferPool{
		shards:   make([]poolShard, n),
		mask:     uint64(n - 1),
		capacity: capacity,
	}
	base, extra := capacity/n, capacity%n
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.frames = make(map[frameKey]*frame, base+1)
		sh.budget = base
		if i < extra {
			sh.budget++
		}
	}
	return bp
}

// Capacity returns the maximum number of cached pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// ShardCount returns the number of lock domains.
func (bp *BufferPool) ShardCount() int { return len(bp.shards) }

// Stats returns a consistent snapshot of the pool counters. Safe to
// call concurrently with scans (counters are atomics).
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		Hits:      bp.hits.Load(),
		Misses:    bp.misses.Load(),
		Evictions: bp.evictions.Load(),
	}
}

// shard maps a page to its lock domain via a splitmix-style mix of the
// file id and page number.
func (bp *BufferPool) shard(key frameKey) *poolShard {
	h := key.file.id*0x9E3779B97F4A7C15 + uint64(key.page)
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return &bp.shards[h&bp.mask]
}

// Get pins the page and returns its in-memory image. The caller must call
// Unpin (with dirty=true if it modified the image) when done.
//
// A miss reads from disk outside the shard lock: the frame is published
// in the map with a fill latch first, so concurrent getters of the same
// page block on the latch (not on the shard), and getters of other
// pages proceed through the shard concurrently.
func (bp *BufferPool) Get(f *PagedFile, id PageID) (*frame, error) {
	key := frameKey{f, id}
	sh := bp.shard(key)
	sh.mu.Lock()
	for {
		if fr, ok := sh.frames[key]; ok {
			fr.pins++
			fr.used = true
			latch := fr.loading
			sh.mu.Unlock()
			if latch == nil {
				bp.hits.Add(1)
				return fr, nil
			}
			// Waiting on another getter's fill pays the I/O latency, so
			// it counts as a miss, keeping the reported hit rate honest
			// about how many accesses were served from memory.
			bp.misses.Add(1)
			<-latch
			// The pin taken above keeps the frame from being recycled, so
			// loadErr still belongs to the fill we waited for.
			if err := fr.loadErr; err != nil {
				sh.mu.Lock()
				fr.pins--
				sh.mu.Unlock()
				return nil, err
			}
			return fr, nil
		}
		fr := sh.allocLocked(bp)
		if fr == nil {
			sh.mu.Unlock()
			if err := bp.stealBudget(sh); err != nil {
				return nil, err
			}
			sh.mu.Lock()
			continue // re-check: the page may have been cached meanwhile
		}
		bp.misses.Add(1)
		fr.key = key
		fr.pins = 1
		fr.used = true
		fr.dirty = false
		latch := make(chan struct{})
		fr.loading = latch
		fr.loadErr = nil
		sh.frames[key] = fr
		sh.mu.Unlock()

		err := f.ReadPage(id, fr.data[:]) // the actual I/O, outside the lock
		sh.mu.Lock()
		fr.loading = nil
		fr.loadErr = err
		if err != nil {
			fr.pins--
			delete(sh.frames, key)
			fr.key = frameKey{}
		}
		sh.mu.Unlock()
		close(latch)
		if err != nil {
			return nil, err
		}
		return fr, nil
	}
}

// NewPage pins a frame for a freshly allocated page without reading from
// disk (the page is known to be zero).
func (bp *BufferPool) NewPage(f *PagedFile, id PageID) (*frame, error) {
	key := frameKey{f, id}
	sh := bp.shard(key)
	sh.mu.Lock()
	for {
		if _, ok := sh.frames[key]; ok {
			sh.mu.Unlock()
			return nil, fmt.Errorf("storage: NewPage for already-cached page %d", id)
		}
		fr := sh.allocLocked(bp)
		if fr == nil {
			sh.mu.Unlock()
			if err := bp.stealBudget(sh); err != nil {
				return nil, err
			}
			sh.mu.Lock()
			continue
		}
		fr.key = key
		fr.pins = 1
		fr.used = true
		fr.dirty = true
		clear(fr.data[:])
		sh.frames[key] = fr
		sh.mu.Unlock()
		return fr, nil
	}
}

// allocLocked finds a reusable frame in the shard: a fresh frame while
// the shard is under budget, else an unpinned clean page evicted via the
// clock algorithm. Returns nil when every frame is pinned or dirty.
// Called with sh.mu held.
func (sh *poolShard) allocLocked(bp *BufferPool) *frame {
	if len(sh.clock) < sh.budget {
		fr := &frame{}
		sh.clock = append(sh.clock, fr)
		return fr
	}
	return sh.evictLocked(bp)
}

// evictLocked runs the clock sweep, returning an evicted frame (still
// tracked in the shard's clock) or nil.
func (sh *poolShard) evictLocked(bp *BufferPool) *frame {
	for sweep := 0; sweep < 2*len(sh.clock); sweep++ {
		fr := sh.clock[sh.hand]
		sh.hand = (sh.hand + 1) % len(sh.clock)
		if fr.pins > 0 || fr.dirty {
			continue
		}
		if fr.used {
			fr.used = false
			continue
		}
		if fr.key != (frameKey{}) {
			delete(sh.frames, fr.key)
			fr.key = frameKey{}
			bp.evictions.Add(1)
		}
		return fr
	}
	return nil
}

// stealBudget rebalances one unit of frame budget from a sibling shard
// into home after home's local allocation failed. Victim selection is
// pressure-aware: the sibling with the most spare (unmaterialized) budget
// cedes a unit first; otherwise the sibling with the most unpinned clean
// frames — the one losing the least cache utility — is evicted from and a
// frame physically moves. A first-fit sweep remains as the fallback
// because the scored pick is made from racy snapshots. Only one shard
// lock is held at a time (no ordering, no deadlock). Errors when every
// frame in the pool is pinned or dirty.
func (bp *BufferPool) stealBudget(home *poolShard) error {
	// Pass 1: the shard with the most spare budget cedes a unit without
	// losing any cached page.
	if sib := bp.maxScoreShard(home, func(sh *poolShard) int {
		return sh.budget - len(sh.clock)
	}); sib != nil {
		sib.mu.Lock()
		if len(sib.clock) < sib.budget { // re-validate under the lock
			sib.budget--
			sib.mu.Unlock()
			home.mu.Lock()
			home.budget++
			home.mu.Unlock()
			return nil
		}
		sib.mu.Unlock()
	}
	// Pass 2: evict from the shard under the least eviction pressure (most
	// unpinned clean frames).
	if sib := bp.maxScoreShard(home, func(sh *poolShard) int {
		free := 0
		for _, fr := range sh.clock {
			if fr.pins == 0 && !fr.dirty {
				free++
			}
		}
		return free
	}); sib != nil {
		sib.mu.Lock()
		if fr := sib.evictLocked(bp); fr != nil {
			sib.removeFromClockLocked(fr)
			sib.budget--
			sib.mu.Unlock()
			home.mu.Lock()
			home.budget++
			home.clock = append(home.clock, fr)
			home.mu.Unlock()
			return nil
		}
		sib.mu.Unlock()
	}
	// Fallback: the snapshots raced with concurrent pins; take whatever
	// any shard can give, first fit.
	for i := range bp.shards {
		sib := &bp.shards[i]
		if sib == home {
			continue
		}
		sib.mu.Lock()
		if len(sib.clock) < sib.budget {
			sib.budget--
			sib.mu.Unlock()
			home.mu.Lock()
			home.budget++
			home.mu.Unlock()
			return nil
		}
		if fr := sib.evictLocked(bp); fr != nil {
			sib.removeFromClockLocked(fr)
			sib.budget--
			sib.mu.Unlock()
			home.mu.Lock()
			home.budget++
			home.clock = append(home.clock, fr)
			home.mu.Unlock()
			return nil
		}
		sib.mu.Unlock()
	}
	return fmt.Errorf("storage: buffer pool exhausted (%d frames, all pinned or dirty); checkpoint required", bp.capacity)
}

// maxScoreShard returns the shard (other than home) with the highest
// positive score, or nil. Scores are computed one shard lock at a time,
// so they are snapshots; callers re-validate under the winner's lock.
func (bp *BufferPool) maxScoreShard(home *poolShard, score func(*poolShard) int) *poolShard {
	var best *poolShard
	bestScore := 0
	for i := range bp.shards {
		sib := &bp.shards[i]
		if sib == home {
			continue
		}
		sib.mu.Lock()
		s := score(sib)
		sib.mu.Unlock()
		if s > bestScore {
			bestScore, best = s, sib
		}
	}
	return best
}

// removeFromClockLocked unlinks fr from the shard's clock list.
func (sh *poolShard) removeFromClockLocked(fr *frame) {
	for i, c := range sh.clock {
		if c == fr {
			last := len(sh.clock) - 1
			sh.clock[i] = sh.clock[last]
			sh.clock[last] = nil
			sh.clock = sh.clock[:last]
			if sh.hand >= len(sh.clock) {
				sh.hand = 0
			}
			return
		}
	}
}

// Unpin releases a pinned frame.
func (bp *BufferPool) Unpin(fr *frame, dirty bool) {
	// fr.key cannot change while the caller holds a pin, so reading it
	// before taking the shard lock is safe.
	sh := bp.shard(fr.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fr.pins <= 0 {
		panic("storage: Unpin of unpinned frame")
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
}

// Data exposes the page image of a pinned frame.
func (fr *frame) Data() []byte { return fr.data[:] }

// FlushFile writes every dirty page of f to disk, in ascending PageID
// order for sequential I/O, and clears dirty flags. The file is not
// fsynced; callers sequence Sync with their WAL protocol. Concurrent
// Get/Unpin on other pages proceed; callers must not mutate pinned
// pages of f during the flush (checkpoints run with the engine's
// writer lock held).
func (bp *BufferPool) FlushFile(f *PagedFile) error {
	var toFlush []*frame
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		for _, fr := range sh.frames {
			if fr.key.file == f && fr.dirty {
				fr.pins++ // hold while writing
				toFlush = append(toFlush, fr)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(toFlush, func(i, j int) bool {
		return toFlush[i].key.page < toFlush[j].key.page
	})
	var firstErr error
	for _, fr := range toFlush {
		var err error
		if firstErr == nil {
			err = f.WritePage(fr.key.page, fr.data[:])
		}
		sh := bp.shard(fr.key)
		sh.mu.Lock()
		fr.pins--
		if err == nil && firstErr == nil {
			fr.dirty = false
		}
		sh.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// DropFile removes every cached page of f (used when a table is dropped or
// truncated during rollback). Dirty pages are discarded.
func (bp *BufferPool) DropFile(f *PagedFile) {
	for i := range bp.shards {
		sh := &bp.shards[i]
		sh.mu.Lock()
		for k, fr := range sh.frames {
			if k.file == f {
				if fr.pins > 0 {
					sh.mu.Unlock()
					panic("storage: DropFile with pinned pages")
				}
				fr.dirty = false
				fr.key = frameKey{}
				delete(sh.frames, k)
			}
		}
		sh.mu.Unlock()
	}
}
