package storage

import "repro/internal/sqltypes"

// Zone maps are per-sealed-page, per-column min/max summaries kept in
// memory alongside the heap's page directory. A scan carrying a sargable
// predicate skips whole pages whose range provably cannot satisfy it.
// Entries are collected when a tail page is sealed; pages sealed by an
// earlier process start without entries (recovery does not decode page
// payloads) and are filled lazily by FillZoneMaps (CHECKPOINT / ANALYZE).
// Skipping is strictly conservative: a page without a valid entry is
// always read.

// ZoneEntry is one column's summary over one sealed page.
type ZoneEntry struct {
	Valid      bool // entry was collected (column kind is comparable)
	HasNonNull bool // at least one non-NULL value on the page
	Min, Max   sqltypes.Value
}

// ZoneFilter is one column's sargable bound for page pruning: only rows
// with Lo <= col <= Hi can match (bounds are inclusive; pass a NULL
// value for an open bound). Comparison predicates never match NULL rows,
// so an all-NULL page is skippable under any filter.
type ZoneFilter struct {
	Col    int
	Lo, Hi sqltypes.Value
}

// zoneComparable reports whether a storage kind participates in zone
// maps. Bytes columns (VARBINARY, packed SEQUENCE) are excluded: their
// storage ordering does not match query-level comparisons.
func zoneComparable(k sqltypes.Kind) bool {
	switch k {
	case sqltypes.KindInt, sqltypes.KindFloat, sqltypes.KindString, sqltypes.KindBool:
		return true
	}
	return false
}

// buildZoneEntries summarizes one sealed page's rows (storage format).
func buildZoneEntries(kinds []sqltypes.Kind, rows []sqltypes.Row) []ZoneEntry {
	zs := make([]ZoneEntry, len(kinds))
	for c, k := range kinds {
		if !zoneComparable(k) {
			continue
		}
		z := ZoneEntry{Valid: true}
		for _, r := range rows {
			v := r[c]
			if v.IsNull() {
				continue
			}
			if !z.HasNonNull {
				z.Min, z.Max, z.HasNonNull = v, v, true
				continue
			}
			if sqltypes.Compare(v, z.Min) < 0 {
				z.Min = v
			}
			if sqltypes.Compare(v, z.Max) > 0 {
				z.Max = v
			}
		}
		zs[c] = z
	}
	return zs
}

// skipByZones reports whether a page summarized by zs provably holds no
// row satisfying every filter.
func skipByZones(zs []ZoneEntry, filters []ZoneFilter) bool {
	for _, f := range filters {
		if f.Col < 0 || f.Col >= len(zs) {
			continue
		}
		z := zs[f.Col]
		if !z.Valid {
			continue
		}
		if !z.HasNonNull {
			return true // comparisons never match NULL
		}
		if !f.Lo.IsNull() && sqltypes.Compare(z.Max, f.Lo) < 0 {
			return true
		}
		if !f.Hi.IsNull() && sqltypes.Compare(z.Min, f.Hi) > 0 {
			return true
		}
	}
	return false
}

// noteSealedZonesLocked records zone entries for the page just appended
// to pageRows. Caller holds h.mu.
func (h *Heap) noteSealedZonesLocked(rows []sqltypes.Row) {
	// Pages sealed while earlier pages still lack entries keep the slice
	// aligned with pageRows by padding with invalid (always-read) entries.
	for len(h.zones) < len(h.pageRows)-1 {
		h.zones = append(h.zones, nil)
	}
	h.zones = append(h.zones, buildZoneEntries(h.kinds, rows))
}

// FillZoneMaps computes zone entries for sealed pages that lack them
// (pages persisted before this process opened the heap). It reads those
// pages through the buffer pool; concurrent scans are safe.
func (h *Heap) FillZoneMaps() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.zones) < len(h.pageRows) {
		h.zones = append(h.zones, nil)
	}
	for p := range h.zones {
		if h.zones[p] != nil {
			continue
		}
		fr, err := h.pool.Get(h.file, PageID(p+1))
		if err != nil {
			// Unreadable (e.g. corrupt) pages keep no entry: they are always
			// read, so the query that touches them surfaces the error — zone
			// collection must not turn bit rot into an open/checkpoint
			// failure.
			continue
		}
		rows, err := h.decodePage(fr.Data(), nil)
		h.pool.Unpin(fr, false)
		if err != nil {
			continue
		}
		h.zones[p] = buildZoneEntries(h.kinds, rows)
	}
	return nil
}

// ZoneSkip reports whether sealed page p (0-based) can be skipped under
// the filters. Pages without collected entries are never skipped.
func (h *Heap) ZoneSkip(p int64, filters []ZoneFilter) bool {
	if len(filters) == 0 {
		return false
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	if p < 0 || p >= int64(len(h.zones)) || h.zones[p] == nil {
		return false
	}
	return skipByZones(h.zones[p], filters)
}

// ZonePrunedPages returns how many of the sealed pages in [0, total)
// survive zone pruning under the filters, and the total — the planner's
// exact page-I/O figure for a zone-map-pruned scan.
func (h *Heap) ZonePrunedPages(filters []ZoneFilter) (kept, total int64) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	total = int64(len(h.pageRows))
	if len(filters) == 0 {
		return total, total
	}
	kept = total
	for p := 0; p < len(h.zones) && p < len(h.pageRows); p++ {
		if h.zones[p] != nil && skipByZones(h.zones[p], filters) {
			kept--
		}
	}
	return kept, total
}

// ZonesCollected returns how many sealed pages currently carry zone
// entries (observability for tests and ANALYZE).
func (h *Heap) ZonesCollected() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var n int64
	for _, z := range h.zones {
		if z != nil {
			n++
		}
	}
	return n
}
