// Package storage implements the relational storage engine: fixed-size
// paged files, a pinning buffer pool with clock eviction, row
// serialization, and the three physical row formats of the paper's
// evaluation — uncompressed, ROW compression (variable-length encodings,
// SQL Server 2008 §2.3.5) and PAGE compression (row + column-prefix +
// page-dictionary compression applied when a page is sealed).
//
// Durability follows a force-at-checkpoint, no-steal policy: dirty pages
// are never evicted and data files are only mutated at checkpoints, which
// makes write-ahead-log redo idempotent (see package wal).
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// PageSize is the fixed page size, matching SQL Server's 8 KB pages.
const PageSize = 8192

// PageID identifies a page within a PagedFile.
type PageID int64

// PagedFile provides page-granular access to an underlying file. It is
// safe for concurrent use.
type PagedFile struct {
	mu    sync.Mutex
	f     fault.File
	pages int64
	path  string
	id    uint64 // process-unique, used to hash pages onto pool shards
	inj   *fault.Injector
	// verify, when set, checks a page image read from disk (CRC
	// verification on buffer-pool misses). Set once at open time, before
	// the file is shared.
	verify func(PageID, []byte) error
}

// pagedFileSeq hands out process-unique PagedFile ids.
var pagedFileSeq atomic.Uint64

// OpenPagedFile opens (creating if necessary) a paged file. The file size
// must be a multiple of PageSize.
func OpenPagedFile(path string) (*PagedFile, error) {
	return OpenPagedFileFault(path, nil, "file")
}

// OpenPagedFileFault is OpenPagedFile with fault-injection routing: the
// file's reads, writes, syncs and truncates evaluate failpoints labelled
// with site, and a simulated crash discards its unsynced writes.
func OpenPagedFileFault(path string, inj *fault.Injector, site string) (*PagedFile, error) {
	f, err := fault.OpenFile(inj, site, path)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	if size%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d not a multiple of page size", path, size)
	}
	return &PagedFile{f: f, pages: size / PageSize, path: path, id: pagedFileSeq.Add(1), inj: inj}, nil
}

// SetPageVerifier installs fn to check every page image this file reads
// from disk. Must be called at open time, before the file is shared.
func (p *PagedFile) SetPageVerifier(fn func(PageID, []byte) error) { p.verify = fn }

// verifyPage runs the installed page verifier, if any.
func (p *PagedFile) verifyPage(id PageID, data []byte) error {
	if p.verify == nil {
		return nil
	}
	return p.verify(id, data)
}

// NumPages returns the current number of allocated pages.
func (p *PagedFile) NumPages() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pages
}

// Path returns the backing file path.
func (p *PagedFile) Path() string { return p.path }

// Allocate extends the file by one zero page and returns its id.
func (p *PagedFile) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := PageID(p.pages)
	var zero [PageSize]byte
	if _, err := p.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return 0, fmt.Errorf("storage: allocate page %d in %s: %w", id, p.path, err)
	}
	p.pages++
	return id, nil
}

// ReadPage fills buf (which must be PageSize long) with the page contents.
func (p *PagedFile) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: ReadPage buffer size %d", len(buf))
	}
	p.mu.Lock()
	n := p.pages
	p.mu.Unlock()
	if int64(id) < 0 || int64(id) >= n {
		return fmt.Errorf("storage: page %d out of range [0,%d) in %s", id, n, p.path)
	}
	_, err := p.f.ReadAt(buf, int64(id)*PageSize)
	if err != nil {
		return fmt.Errorf("storage: read page %d of %s: %w", id, p.path, err)
	}
	return nil
}

// WritePage persists buf (PageSize long) as the page contents.
func (p *PagedFile) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: WritePage buffer size %d", len(buf))
	}
	p.mu.Lock()
	n := p.pages
	p.mu.Unlock()
	if int64(id) < 0 || int64(id) >= n {
		return fmt.Errorf("storage: page %d out of range [0,%d) in %s", id, n, p.path)
	}
	if _, err := p.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d of %s: %w", id, p.path, err)
	}
	return nil
}

// Truncate shrinks the file to n pages (used by transaction rollback of
// appended heap pages).
func (p *PagedFile) Truncate(n int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > p.pages {
		return fmt.Errorf("storage: truncate %s to %d > %d pages", p.path, n, p.pages)
	}
	if err := p.f.Truncate(n * PageSize); err != nil {
		return err
	}
	p.pages = n
	return nil
}

// Sync flushes the file to stable storage.
func (p *PagedFile) Sync() error { return p.f.Sync() }

// Close releases the file handle.
func (p *PagedFile) Close() error { return p.f.Close() }

// SizeBytes returns the allocated file size.
func (p *PagedFile) SizeBytes() int64 { return p.NumPages() * PageSize }
