package storage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sqltypes"
)

// Columnar page format (pageTypeColumnar): cells are stored
// column-major so a sealed page can materialize straight into the
// vectorized executor's column vectors, and low-NDV columns (DGE tags,
// lane/flowcell ids, quality bins — the structured genomics columns of
// Campagne et al.) carry dictionary or run-length codes that predicates
// evaluate without decompressing. Each column independently picks the
// smallest of three encodings:
//
//	uvarint colCount, rowCount
//	per column:
//	    enc    byte (0 = flat, 1 = dict, 2 = rle)
//	    nulls  byte (0/1); if 1: ceil(rows/8) bitmap bytes
//	    flat:  per non-null row, the cell image
//	           (int varint | float 8B | bool 1B | text uvarint len + bytes)
//	    dict:  uvarint dictCount; per entry uvarint len + image;
//	           per row uvarint code (null rows repeat the previous code
//	           so they never break a run)
//	    rle:   dict header as above; uvarint runCount;
//	           per run uvarint code, uvarint length
const pageTypeColumnar = 3

const (
	colEncFlat = 0
	colEncDict = 1
	colEncRLE  = 2
)

// EncodeColumnarPage encodes rows column-major, or returns nil (no
// error) when the image cannot beat limit bytes.
func EncodeColumnarPage(kinds []sqltypes.Kind, rows []sqltypes.Row, limit int) ([]byte, error) {
	nCols, nRows := len(kinds), len(rows)
	out := binary.AppendUvarint(nil, uint64(nCols))
	out = binary.AppendUvarint(out, uint64(nRows))
	var images [][]byte // per-row images of the current column
	for c := 0; c < nCols; c++ {
		images = images[:0]
		hasNulls := false
		for r, row := range rows {
			if len(row) != nCols {
				return nil, fmt.Errorf("storage: row %d has %d columns, want %d", r, len(row), nCols)
			}
			v := row[c]
			if v.IsNull() {
				images = append(images, nil)
				hasNulls = true
				continue
			}
			if v.K != kinds[c] {
				return nil, fmt.Errorf("storage: row %d col %d kind %s != %s", r, c, v.K, kinds[c])
			}
			images = append(images, cellImage(nil, v))
		}
		out = encodeColumn(out, kinds[c], images, hasNulls, nRows)
		if len(out) > limit {
			return nil, nil
		}
	}
	return out, nil
}

// encodeColumn appends one column in the smallest of the three encodings.
func encodeColumn(out []byte, kind sqltypes.Kind, images [][]byte, hasNulls bool, nRows int) []byte {
	// Dictionary assignment in first-appearance order; null rows inherit
	// the previous row's code so interleaved nulls don't break runs (the
	// null bitmap is authoritative, the code under a null is filler).
	dictIdx := make(map[string]int32)
	var dict [][]byte
	codes := make([]int32, nRows)
	prev := int32(0)
	flatSize := 0
	for r, img := range images {
		if img == nil {
			codes[r] = prev
			continue
		}
		code, ok := dictIdx[string(img)]
		if !ok {
			code = int32(len(dict))
			dictIdx[string(img)] = code
			dict = append(dict, img)
		}
		codes[r] = code
		prev = code
		flatSize += len(img)
		if isTextKind(kind) {
			flatSize += uvarintLen(uint64(len(img)))
		}
	}
	dictHdr := uvarintLen(uint64(len(dict)))
	for _, e := range dict {
		dictHdr += uvarintLen(uint64(len(e))) + len(e)
	}
	dictSize := dictHdr
	for _, c := range codes {
		dictSize += uvarintLen(uint64(c))
	}
	rleSize := dictHdr
	nRuns := 0
	for r := 0; r < nRows; {
		e := r + 1
		for e < nRows && codes[e] == codes[r] {
			e++
		}
		rleSize += uvarintLen(uint64(codes[r])) + uvarintLen(uint64(e-r))
		nRuns++
		r = e
	}
	rleSize += uvarintLen(uint64(nRuns))

	enc := byte(colEncFlat)
	best := flatSize
	if dictSize < best {
		enc, best = colEncDict, dictSize
	}
	if rleSize < best {
		enc = colEncRLE
	}

	out = append(out, enc)
	if hasNulls {
		out = append(out, 1)
		at := len(out)
		for i := 0; i < (nRows+7)/8; i++ {
			out = append(out, 0)
		}
		for r, img := range images {
			if img == nil {
				out[at+r/8] |= 1 << uint(r%8)
			}
		}
	} else {
		out = append(out, 0)
	}
	switch enc {
	case colEncFlat:
		for _, img := range images {
			if img == nil {
				continue
			}
			if isTextKind(kind) {
				out = binary.AppendUvarint(out, uint64(len(img)))
			}
			out = append(out, img...)
		}
	case colEncDict:
		out = appendColDict(out, dict)
		for _, c := range codes {
			out = binary.AppendUvarint(out, uint64(c))
		}
	case colEncRLE:
		out = appendColDict(out, dict)
		out = binary.AppendUvarint(out, uint64(nRuns))
		for r := 0; r < nRows; {
			e := r + 1
			for e < nRows && codes[e] == codes[r] {
				e++
			}
			out = binary.AppendUvarint(out, uint64(codes[r]))
			out = binary.AppendUvarint(out, uint64(e-r))
			r = e
		}
	}
	return out
}

func appendColDict(out []byte, dict [][]byte) []byte {
	out = binary.AppendUvarint(out, uint64(len(dict)))
	for _, e := range dict {
		out = binary.AppendUvarint(out, uint64(len(e)))
		out = append(out, e...)
	}
	return out
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// columnarReader walks a columnar page payload column by column; decode
// callbacks receive raw images so row- and vector-materializing readers
// share the traversal.
type columnarReader struct {
	rd    pageReader
	nCols int
	nRows int
	kind  sqltypes.Kind // kind of the column being decoded
}

func newColumnarReader(buf []byte, nCols int) (*columnarReader, error) {
	cr := &columnarReader{rd: pageReader{buf: buf}}
	cr.nCols = int(cr.rd.uvarint())
	cr.nRows = int(cr.rd.uvarint())
	if cr.rd.failed || cr.nCols != nCols {
		return nil, fmt.Errorf("storage: columnar page has %d columns, schema has %d", cr.nCols, nCols)
	}
	return cr, nil
}

// column decodes the next column. nulls is nil when the column has no
// nulls; codes/dict are nil for flat columns, in which case flat holds
// one image per non-null row in row order.
func (cr *columnarReader) column() (enc byte, nulls []byte, dict [][]byte, codes []int32, flat [][]byte, err error) {
	rd := &cr.rd
	encB := rd.bytes(1)
	hasN := rd.bytes(1)
	if rd.failed {
		return 0, nil, nil, nil, nil, rd.err()
	}
	enc = encB[0]
	if hasN[0] != 0 {
		nulls = rd.bytes((cr.nRows + 7) / 8)
	}
	isNull := func(r int) bool {
		return nulls != nil && nulls[r/8]&(1<<uint(r%8)) != 0
	}
	switch enc {
	case colEncFlat:
		flat = make([][]byte, cr.nRows)
		for r := 0; r < cr.nRows; r++ {
			if isNull(r) {
				continue
			}
			flat[r] = cr.readImage()
			if rd.failed {
				return 0, nil, nil, nil, nil, rd.err()
			}
		}
	case colEncDict, colEncRLE:
		nDict := int(rd.uvarint())
		if rd.failed || nDict < 0 || nDict > cr.nRows {
			return 0, nil, nil, nil, nil, fmt.Errorf("storage: bad columnar dictionary size")
		}
		dict = make([][]byte, nDict)
		for i := range dict {
			dict[i] = rd.bytes(int(rd.uvarint()))
		}
		codes = make([]int32, cr.nRows)
		if enc == colEncDict {
			for r := range codes {
				codes[r] = int32(rd.uvarint())
			}
		} else {
			nRuns := int(rd.uvarint())
			at := 0
			for i := 0; i < nRuns; i++ {
				code := int32(rd.uvarint())
				n := int(rd.uvarint())
				if rd.failed || at+n > cr.nRows {
					return 0, nil, nil, nil, nil, fmt.Errorf("storage: columnar runs exceed row count")
				}
				for j := 0; j < n; j++ {
					codes[at+j] = code
				}
				at += n
			}
			if at != cr.nRows {
				return 0, nil, nil, nil, nil, fmt.Errorf("storage: columnar runs cover %d of %d rows", at, cr.nRows)
			}
		}
		for r := range codes {
			if !isNull(r) && int(codes[r]) >= nDict {
				return 0, nil, nil, nil, nil, fmt.Errorf("storage: columnar code out of range")
			}
		}
	default:
		return 0, nil, nil, nil, nil, fmt.Errorf("storage: unknown column encoding %d", enc)
	}
	if rd.failed {
		return 0, nil, nil, nil, nil, rd.err()
	}
	return enc, nulls, dict, codes, flat, nil
}

// readImage consumes one flat cell image of the current column's kind
// (cr.kind, set by the caller before each column pass).
func (cr *columnarReader) readImage() []byte {
	rd := &cr.rd
	switch cr.kind {
	case sqltypes.KindInt:
		return rd.varintBytes()
	case sqltypes.KindFloat:
		return rd.bytes(8)
	case sqltypes.KindBool:
		return rd.bytes(1)
	default:
		return rd.bytes(int(rd.uvarint()))
	}
}

// DecodeColumnarRows decodes a columnar page payload back into rows,
// appending to dst — the row-path and recovery decoder.
func DecodeColumnarRows(kinds []sqltypes.Kind, buf []byte, dst []sqltypes.Row) ([]sqltypes.Row, error) {
	cr, err := newColumnarReader(buf, len(kinds))
	if err != nil {
		return nil, err
	}
	rows := make([]sqltypes.Row, cr.nRows)
	for r := range rows {
		rows[r] = make(sqltypes.Row, cr.nCols)
	}
	for c := 0; c < cr.nCols; c++ {
		cr.kind = kinds[c]
		_, nulls, dict, codes, flat, err := cr.column()
		if err != nil {
			return nil, err
		}
		// Decode dictionary entries once per column.
		vals := make([]sqltypes.Value, len(dict))
		for i, img := range dict {
			v, err := cellFromImage(kinds[c], img)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		for r := 0; r < cr.nRows; r++ {
			if nulls != nil && nulls[r/8]&(1<<uint(r%8)) != 0 {
				rows[r][c] = sqltypes.Null
				continue
			}
			if codes != nil {
				rows[r][c] = vals[codes[r]]
				continue
			}
			v, err := cellFromImage(kinds[c], flat[r])
			if err != nil {
				return nil, err
			}
			rows[r][c] = v
		}
	}
	return append(dst, rows...), nil
}
