package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/sqltypes"
)

func anyRow(vals ...sqltypes.Value) sqltypes.Row { return sqltypes.Row(vals) }

func TestAnyRowCodecRoundTrip(t *testing.T) {
	rows := []sqltypes.Row{
		anyRow(sqltypes.NewInt(-42), sqltypes.NewFloat(3.25), sqltypes.NewBool(true)),
		anyRow(sqltypes.Null, sqltypes.NewString("héllo"), sqltypes.NewBytes([]byte{0, 1, 2})),
		anyRow(), // zero-width row
		anyRow(sqltypes.NewString(""), sqltypes.NewInt(1<<60)),
	}
	var buf []byte
	var err error
	for _, r := range rows {
		buf, err = AppendAnyRow(buf, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	pos := 0
	for i, want := range rows {
		got, n, err := DecodeAnyRow(buf[pos:])
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		pos += n
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("row %d: got %v want %v", i, got, want)
		}
	}
	if pos != len(buf) {
		t.Errorf("decoded %d of %d bytes", pos, len(buf))
	}
}

func TestSpillFileRoundTripAndRelease(t *testing.T) {
	dir := t.TempDir()
	pool := NewBufferPool(64)
	mgr := NewSpillManager(dir, pool)
	f, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000 // enough rows to seal multiple pages
	var want []sqltypes.Row
	for i := 0; i < n; i++ {
		r := anyRow(sqltypes.NewInt(int64(i)), sqltypes.NewString(strings.Repeat("x", i%40)))
		want = append(want, r)
		if err := f.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if f.Rows() != n {
		t.Fatalf("Rows() = %d", f.Rows())
	}
	if f.file.NumPages() == 0 {
		t.Fatal("expected sealed pages")
	}
	// Two full iterations (a re-probe re-reads the same file).
	for pass := 0; pass < 2; pass++ {
		it := f.NewIterator()
		var got []sqltypes.Row
		for {
			r, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, r)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: round trip mismatch (%d rows vs %d)", pass, len(got), len(want))
		}
	}
	path := f.file.Path()
	if err := f.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("spill file still exists after Release: %v", err)
	}
	if err := f.Release(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestSpillFileConcurrentAppend(t *testing.T) {
	pool := NewBufferPool(32)
	mgr := NewSpillManager(t.TempDir(), pool)
	f, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r := anyRow(sqltypes.NewInt(int64(w)), sqltypes.NewInt(int64(i)))
				if err := f.Append(r); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	it := f.NewIterator()
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seen[fmt.Sprintf("%d/%d", r[0].I, r[1].I)] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("saw %d distinct rows, want %d", len(seen), workers*per)
	}
}

func TestSpillManagerSeparateFiles(t *testing.T) {
	dir := t.TempDir()
	mgr := NewSpillManager(filepath.Join(dir, "tmp"), NewBufferPool(16))
	a, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	if a.file.Path() == b.file.Path() {
		t.Fatal("spill files share a path")
	}
	a.Release()
	b.Release()
}

// TestSpillLargeRowSpansPages verifies rows bigger than one page chunk
// across pages and round-trip exactly — anything the in-memory join holds
// (e.g. unpacked SEQUENCE strings > 8 KB) must also spill.
func TestSpillLargeRowSpansPages(t *testing.T) {
	mgr := NewSpillManager(t.TempDir(), NewBufferPool(16))
	f, err := mgr.Create()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	big := make([]byte, 3*PageSize)
	for i := range big {
		big[i] = byte(i * 31)
	}
	want := []sqltypes.Row{
		anyRow(sqltypes.NewInt(1), sqltypes.NewBytes(big)),
		anyRow(sqltypes.NewInt(2), sqltypes.NewString(strings.Repeat("acgt", PageSize))),
		anyRow(sqltypes.NewInt(3), sqltypes.NewString("small")),
	}
	for _, r := range want {
		if err := f.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if f.file.NumPages() < 3 {
		t.Fatalf("big rows sealed only %d pages", f.file.NumPages())
	}
	it := f.NewIterator()
	var got []sqltypes.Row
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, r)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("spanning rows did not round-trip (%d rows)", len(got))
	}
}

// TestSpillManagerSweepsStaleFiles simulates a crash: files left behind by
// a previous process (same names, never Released) must not leak into a
// new manager's spill files.
func TestSpillManagerSweepsStaleFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tmp")
	pool := NewBufferPool(16)

	crashed := NewSpillManager(dir, pool)
	f, err := crashed.Create()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ { // enough to seal pages
		if err := f.Append(anyRow(sqltypes.NewInt(int64(i)), sqltypes.NewString("stale"))); err != nil {
			t.Fatal(err)
		}
	}
	stalePath := f.file.Path()
	f.file.Close() // crash: no Release, file stays on disk
	if _, err := os.Stat(stalePath); err != nil {
		t.Fatalf("stale file missing: %v", err)
	}

	fresh := NewSpillManager(dir, NewBufferPool(16))
	g, err := fresh.Create() // same seq → same path as the stale file
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	if g.file.NumPages() != 0 {
		t.Fatalf("fresh spill file inherited %d stale pages", g.file.NumPages())
	}
	if err := g.Append(anyRow(sqltypes.NewString("fresh"))); err != nil {
		t.Fatal(err)
	}
	it := g.NewIterator()
	r, ok, err := it.Next()
	if err != nil || !ok || r[0].S != "fresh" {
		t.Fatalf("fresh file replayed stale rows: %v %v %v", r, ok, err)
	}
	if _, ok, _ := it.Next(); ok {
		t.Fatal("fresh file contains extra rows")
	}
}

// TestSpillRunSequentialRead: a sorted-run file (CreateRun) must round-
// trip its rows in order while performing zero buffer-pool traffic —
// runs are read exactly once, so caching their pages would only evict
// hot data.
func TestSpillRunSequentialRead(t *testing.T) {
	pool := NewBufferPool(16)
	m := NewSpillManager(t.TempDir(), pool)
	f, err := m.CreateRun()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	var want []sqltypes.Row
	for i := 0; i < 5000; i++ {
		r := anyRow(sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("run-row-%06d", i)))
		want = append(want, r)
		if err := f.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if f.Rows() != 5000 {
		t.Fatalf("Rows() = %d", f.Rows())
	}
	before := pool.Stats()
	it := f.NewIterator()
	var got []sqltypes.Row
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, r)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("run round-trip mismatch: %d vs %d rows", len(got), len(want))
	}
	d := pool.Stats().Sub(before)
	if d.Hits != 0 || d.Misses != 0 {
		t.Fatalf("sequential run read touched the buffer pool: %+v", d)
	}
	// A second iterator re-reads the same rows (extsort re-merges never
	// need this, but the contract should hold).
	it2 := f.NewIterator()
	r, ok, err := it2.Next()
	if err != nil || !ok || !reflect.DeepEqual(r, want[0]) {
		t.Fatalf("second iterator: %v %v %v", r, ok, err)
	}
}
