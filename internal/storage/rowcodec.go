package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/sqltypes"
)

// Compression selects the physical row format of a table, mirroring the
// paper's CREATE TABLE ... WITH (DATA_COMPRESSION = ROW|PAGE) examples.
type Compression uint8

// Compression modes.
const (
	CompressNone Compression = iota
	CompressRow
	CompressPage
)

// String returns the T-SQL spelling.
func (c Compression) String() string {
	switch c {
	case CompressNone:
		return "NONE"
	case CompressRow:
		return "ROW"
	case CompressPage:
		return "PAGE"
	}
	return fmt.Sprintf("Compression(%d)", uint8(c))
}

// RowCodec serializes rows of a fixed column layout.
type RowCodec struct {
	Kinds []sqltypes.Kind // declared column kinds; NULLs allowed anywhere
	Mode  Compression     // CompressNone or CompressRow (page is layered above)
	// Widths optionally narrows fixed-width integer columns in the
	// uncompressed format: 4 stores an INT in 4 bytes (as SQL Server
	// does), 0 or 8 stores 8 bytes. Ignored under ROW compression, where
	// integers are varint-coded anyway.
	Widths []uint8
}

func (c *RowCodec) intWidth(col int) int {
	if c.Widths != nil && col < len(c.Widths) && c.Widths[col] == 4 {
		return 4
	}
	return 8
}

// EncodeAppend appends the encoding of row to dst and returns it.
//
// Uncompressed format ("fixed", like SQL Server's FixedVar rows): a null
// bitmap, then 8 bytes for every numeric column and a fixed 4-byte length
// prefix for every string/bytes column. ROW compression replaces these
// with variable-length encodings: zig-zag varints for integers and uvarint
// length prefixes — "variable-length storage formats for numeric types and
// fixed-length character strings" (paper Section 2.3.5).
func (c *RowCodec) EncodeAppend(dst []byte, row sqltypes.Row) ([]byte, error) {
	if len(row) != len(c.Kinds) {
		return nil, fmt.Errorf("storage: row has %d columns, schema has %d", len(row), len(c.Kinds))
	}
	nb := (len(row) + 7) / 8
	nbAt := len(dst)
	for i := 0; i < nb; i++ {
		dst = append(dst, 0)
	}
	for i, v := range row {
		if v.IsNull() {
			dst[nbAt+i/8] |= 1 << uint(i%8)
			continue
		}
		if err := checkKind(v, c.Kinds[i]); err != nil {
			return nil, fmt.Errorf("storage: column %d: %w", i, err)
		}
		switch v.K {
		case sqltypes.KindInt:
			if c.Mode == CompressNone {
				if c.intWidth(i) == 4 {
					if v.I > math.MaxInt32 || v.I < math.MinInt32 {
						return nil, fmt.Errorf("storage: column %d: value %d overflows 4-byte INT", i, v.I)
					}
					dst = appendFixed32(dst, uint32(int32(v.I)))
				} else {
					dst = appendFixed64(dst, uint64(v.I))
				}
			} else {
				dst = binary.AppendVarint(dst, v.I)
			}
		case sqltypes.KindFloat:
			dst = appendFixed64(dst, math.Float64bits(v.F))
		case sqltypes.KindBool:
			dst = append(dst, byte(v.I))
		case sqltypes.KindString:
			if c.Mode == CompressNone {
				dst = appendFixed32(dst, uint32(len(v.S)))
			} else {
				dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			}
			dst = append(dst, v.S...)
		case sqltypes.KindBytes:
			if c.Mode == CompressNone {
				dst = appendFixed32(dst, uint32(len(v.B)))
			} else {
				dst = binary.AppendUvarint(dst, uint64(len(v.B)))
			}
			dst = append(dst, v.B...)
		default:
			return nil, fmt.Errorf("storage: cannot encode kind %s", v.K)
		}
	}
	return dst, nil
}

func checkKind(v sqltypes.Value, want sqltypes.Kind) error {
	if v.K != want {
		return fmt.Errorf("value kind %s does not match declared %s", v.K, want)
	}
	return nil
}

// Decode reads one row from buf, returning the row and the bytes consumed.
// The row's string/bytes values share memory with buf only if copy is
// false; pass copy=true when buf will be reused (e.g. buffer-pool frames).
func (c *RowCodec) Decode(buf []byte, copyData bool) (sqltypes.Row, int, error) {
	row := make(sqltypes.Row, len(c.Kinds))
	n, err := c.DecodeInto(buf, copyData, row)
	return row, n, err
}

// DecodeInto is Decode into a caller-provided row to avoid allocation.
func (c *RowCodec) DecodeInto(buf []byte, copyData bool, row sqltypes.Row) (int, error) {
	nb := (len(c.Kinds) + 7) / 8
	if len(buf) < nb {
		return 0, fmt.Errorf("storage: row truncated in null bitmap")
	}
	pos := nb
	for i, k := range c.Kinds {
		if buf[i/8]&(1<<uint(i%8)) != 0 {
			row[i] = sqltypes.Null
			continue
		}
		switch k {
		case sqltypes.KindInt:
			if c.Mode == CompressNone {
				w := c.intWidth(i)
				if pos+w > len(buf) {
					return 0, errTruncated(i)
				}
				if w == 4 {
					row[i] = sqltypes.NewInt(int64(int32(binary.LittleEndian.Uint32(buf[pos:]))))
				} else {
					row[i] = sqltypes.NewInt(int64(binary.LittleEndian.Uint64(buf[pos:])))
				}
				pos += w
			} else {
				v, n := binary.Varint(buf[pos:])
				if n <= 0 {
					return 0, errTruncated(i)
				}
				row[i] = sqltypes.NewInt(v)
				pos += n
			}
		case sqltypes.KindFloat:
			if pos+8 > len(buf) {
				return 0, errTruncated(i)
			}
			row[i] = sqltypes.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:])))
			pos += 8
		case sqltypes.KindBool:
			if pos+1 > len(buf) {
				return 0, errTruncated(i)
			}
			row[i] = sqltypes.NewBool(buf[pos] != 0)
			pos++
		case sqltypes.KindString, sqltypes.KindBytes:
			var ln int
			if c.Mode == CompressNone {
				if pos+4 > len(buf) {
					return 0, errTruncated(i)
				}
				ln = int(binary.LittleEndian.Uint32(buf[pos:]))
				pos += 4
			} else {
				v, n := binary.Uvarint(buf[pos:])
				if n <= 0 {
					return 0, errTruncated(i)
				}
				ln = int(v)
				pos += n
			}
			if pos+ln > len(buf) {
				return 0, errTruncated(i)
			}
			data := buf[pos : pos+ln]
			pos += ln
			if k == sqltypes.KindString {
				row[i] = sqltypes.NewString(string(data)) // string() copies
			} else {
				if copyData {
					data = append([]byte(nil), data...)
				}
				row[i] = sqltypes.NewBytes(data)
			}
		default:
			return 0, fmt.Errorf("storage: cannot decode kind %s", k)
		}
	}
	return pos, nil
}

func errTruncated(col int) error {
	return fmt.Errorf("storage: row truncated in column %d", col)
}

func appendFixed64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendFixed32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}
