// Package sequencer simulates a high-throughput sequencing instrument and
// its primary data analysis (paper Phases 0-1). The real pipeline produces
// 750 GB of level-0 tile images per run which are base-called into FASTQ
// and then deleted; since no instrument is available here, this package
// synthesizes the same observable output — per-lane short reads with
// realistic identifiers (machine_run:lane:tile:x:y), per-base Phred
// qualities derived from simulated 4-channel signal intensities, and a
// cycle-dependent error model — so every downstream stage (storage,
// alignment, binning, consensus) exercises the paths the paper measures.
package sequencer

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fastq"
	"repro/internal/seq"
)

// Flowcell describes the physical geometry the paper lays out in Section
// 2.1: 8 lanes per flowcell, each divided into ~300 tiles; one lane is
// normally reserved for a control sample.
type Flowcell struct {
	ID           int
	Lanes        int
	TilesPerLane int
}

// DefaultFlowcell matches the paper's description.
func DefaultFlowcell(id int) Flowcell {
	return Flowcell{ID: id, Lanes: 8, TilesPerLane: 300}
}

// ControlLane is the lane index conventionally reserved for the control
// sample.
const ControlLane = 8

// Instrument is the simulated sequencer with its optical noise model.
type Instrument struct {
	// Machine is the instrument name used as the read-name prefix,
	// e.g. "IL4" in the paper's example read IL4_855:1:1:954:659.
	Machine string
	// ReadLength in base pairs; current short-read technology in the
	// paper ranges 35..300 bp.
	ReadLength int
	// Sigma is the per-channel optical noise at cycle 1.
	Sigma float64
	// Phasing is the fractional noise growth per cycle; it makes
	// qualities decay toward the 3' end of reads, as in real data.
	Phasing float64
	// TileWidth/TileHeight bound the simulated cluster coordinates.
	TileWidth, TileHeight int
}

// NewInstrument returns an instrument with a realistic default noise model:
// roughly Q28 median quality at cycle 1 decaying toward Q16 at cycle 36,
// with a ~0.5% miscall rate — in line with GA-era Illumina data.
func NewInstrument(machine string, readLength int) *Instrument {
	return &Instrument{
		Machine:    machine,
		ReadLength: readLength,
		Sigma:      0.22,
		Phasing:    0.015,
		TileWidth:  2048,
		TileHeight: 2048,
	}
}

// Signal is a single sequencing cycle's 4-channel intensity measurement for
// one cluster — the essence of a level-0 data point after image analysis
// has located the cluster.
type Signal [4]float64

// Run sequences the given template fragments on one lane and returns the
// level-1 short reads. Fragments shorter than the read length are sequenced
// to their full length (as with short DGE tags); longer fragments are read
// from their 5' end. The run is deterministic in seed.
func (ins *Instrument) Run(fc Flowcell, lane, runNo int, templates []string, seed int64) ([]fastq.Record, error) {
	reads, _, err := ins.run(fc, lane, runNo, templates, seed, false)
	return reads, err
}

func (ins *Instrument) run(fc Flowcell, lane, runNo int, templates []string, seed int64, capture bool) ([]fastq.Record, [][][4]uint16, error) {
	if lane < 1 || lane > fc.Lanes {
		return nil, nil, fmt.Errorf("sequencer: lane %d outside flowcell with %d lanes", lane, fc.Lanes)
	}
	rng := rand.New(rand.NewSource(seed))
	reads := make([]fastq.Record, 0, len(templates))
	var signals [][][4]uint16
	if capture {
		signals = make([][][4]uint16, 0, len(templates))
	}
	type coord struct{ tile, x, y int }
	used := make(map[coord]bool, len(templates))
	for i, tmpl := range templates {
		n := ins.ReadLength
		if n > len(tmpl) {
			n = len(tmpl)
		}
		if n == 0 {
			return nil, nil, fmt.Errorf("sequencer: empty template at index %d", i)
		}
		bases := make([]byte, n)
		quals := make([]seq.Quality, n)
		var intens [][4]uint16
		if capture {
			intens = make([][4]uint16, n)
		}
		for c := 0; c < n; c++ {
			sig := ins.measure(rng, tmpl[c], c)
			b, q := CallBaseFromSignal(sig, ins.noiseAt(c))
			bases[c], quals[c] = b, q
			if capture {
				for ch := 0; ch < 4; ch++ {
					v := sig[ch] * 1000
					if v < 0 {
						v = 0
					}
					if v > 65535 {
						v = 65535
					}
					intens[c][ch] = uint16(v)
				}
			}
		}
		// Cluster coordinates are physically unique on a flowcell; keep
		// the simulated ones unique too so read names never collide.
		var pos coord
		for {
			pos = coord{
				tile: rng.Intn(fc.TilesPerLane) + 1,
				x:    rng.Intn(ins.TileWidth),
				y:    rng.Intn(ins.TileHeight),
			}
			if !used[pos] {
				used[pos] = true
				break
			}
		}
		reads = append(reads, fastq.Record{
			Name: fmt.Sprintf("%s_%d:%d:%d:%d:%d:%d", ins.Machine, runNo, fc.ID, lane, pos.tile, pos.x, pos.y),
			Seq:  string(bases),
			Qual: seq.EncodeQualities(quals),
		})
		if capture {
			signals = append(signals, intens)
		}
	}
	return reads, signals, nil
}

// noiseAt returns the effective channel noise at a given cycle.
func (ins *Instrument) noiseAt(cycle int) float64 {
	return ins.Sigma * (1 + ins.Phasing*float64(cycle))
}

// measure synthesizes the 4-channel intensities for one cycle. The channel
// of the true base fluoresces near 1.0; the others show residual
// cross-talk near 0.08. An 'N' in the template (an ambiguous region of the
// sample) fluoresces weakly on all channels.
func (ins *Instrument) measure(rng *rand.Rand, trueBase byte, cycle int) Signal {
	noise := ins.noiseAt(cycle)
	var sig Signal
	code, ok := seq.CodeOf(trueBase)
	for ch := 0; ch < 4; ch++ {
		mean := 0.08
		if ok && byte(ch) == code {
			mean = 1.0
		} else if !ok {
			mean = 0.18 // ambiguous template: all channels weak
		}
		v := mean + rng.NormFloat64()*noise
		if v < 0 {
			v = 0
		}
		sig[ch] = v
	}
	return sig
}

// CallBaseFromSignal performs the base-calling step of primary data
// analysis on one cycle's intensities: the brightest channel wins, and the
// Phred quality is derived from the gap between the two brightest channels
// relative to the noise floor — "the logarithmic-transformed error
// probabilities from the image analysis phase" (paper Section 3).
//
// Weak or ambiguous signals are called 'N' with quality 0.
func CallBaseFromSignal(sig Signal, noise float64) (byte, seq.Quality) {
	best, second := 0, -1
	for ch := 1; ch < 4; ch++ {
		if sig[ch] > sig[best] {
			second = best
			best = ch
		} else if second < 0 || sig[ch] > sig[second] {
			second = ch
		}
	}
	gap := sig[best] - sig[second]
	if sig[best] < 0.35 || gap < noise/4 {
		return 'N', 0
	}
	// Probability that Gaussian noise of the runner-up channel overtakes
	// the gap: p ≈ 0.5 * erfc(gap / (2σ)).
	p := 0.5 * math.Erfc(gap/(2*noise))
	return seq.SymbolOf(byte(best)), seq.QualityFromProbability(p)
}

// RunSRF is Run with the level-0 signal intensities retained, producing
// SRF-style records ("SRF files include not only the actual short reads
// and quality values, but also some core information from the image
// analysis steps such as intensity and signal-to-noise ratio values",
// paper Section 5.3.1). Intensities are stored fixed-point in
// thousandths. The called bases, qualities and read names are identical
// to what Run produces for the same seed.
func (ins *Instrument) RunSRF(fc Flowcell, lane, runNo int, templates []string, seed int64) ([]fastq.SRFRecord, error) {
	reads, signals, err := ins.run(fc, lane, runNo, templates, seed, true)
	if err != nil {
		return nil, err
	}
	out := make([]fastq.SRFRecord, len(reads))
	for i, r := range reads {
		out[i] = fastq.SRFRecord{Name: r.Name, Seq: r.Seq, Qual: r.Qual, Intensities: signals[i]}
	}
	return out, nil
}

// LaneFiles runs one lane per sample-template set and is a convenience for
// building whole-flowcell outputs: result[i] is the read set of lane i+1.
func (ins *Instrument) LaneFiles(fc Flowcell, runNo int, lanes [][]string, seed int64) ([][]fastq.Record, error) {
	if len(lanes) > fc.Lanes {
		return nil, fmt.Errorf("sequencer: %d lane template sets for a flowcell with %d lanes", len(lanes), fc.Lanes)
	}
	out := make([][]fastq.Record, len(lanes))
	for i, templates := range lanes {
		recs, err := ins.Run(fc, i+1, runNo, templates, seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		out[i] = recs
	}
	return out, nil
}
