package sequencer

import (
	"strings"
	"testing"

	"repro/internal/seq"
)

func TestRunProducesValidReads(t *testing.T) {
	ins := NewInstrument("IL4", 36)
	fc := DefaultFlowcell(1)
	templates := []string{
		strings.Repeat("ACGT", 20),
		strings.Repeat("GATTACA", 10),
		"ACGTNACGTNACGTNACGTNACGTNACGTNACGTNACGTN",
	}
	reads, err := ins.Run(fc, 1, 855, templates, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != len(templates) {
		t.Fatalf("%d reads, want %d", len(reads), len(templates))
	}
	for i, r := range reads {
		if err := r.Validate(); err != nil {
			t.Errorf("read %d: %v", i, err)
		}
		if len(r.Seq) != 36 {
			t.Errorf("read %d length = %d, want 36", i, len(r.Seq))
		}
		if !seq.IsValid(r.Seq) {
			t.Errorf("read %d has invalid symbols: %q", i, r.Seq)
		}
		if !strings.HasPrefix(r.Name, "IL4_855:1:1:") {
			t.Errorf("read %d name = %q, want IL4_855:1:1:... prefix", i, r.Name)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	ins := NewInstrument("IL4", 36)
	fc := DefaultFlowcell(1)
	templates := []string{strings.Repeat("ACGT", 20)}
	a, err := ins.Run(fc, 1, 855, templates, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ins.Run(fc, 1, 855, templates, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Error("same seed produced different reads")
	}
	c, err := ins.Run(fc, 1, 855, templates, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Seq == c[0].Seq && a[0].Qual == c[0].Qual && a[0].Name == c[0].Name {
		t.Error("different seeds produced identical reads (suspicious)")
	}
}

func TestRunMostlyAccurate(t *testing.T) {
	// With the default noise model the vast majority of calls must match
	// the template, and the per-base quality should predict accuracy.
	ins := NewInstrument("IL4", 36)
	fc := DefaultFlowcell(1)
	tmpl := strings.Repeat("ACGTTGCA", 5)[:36]
	templates := make([]string, 500)
	for i := range templates {
		templates[i] = tmpl
	}
	reads, err := ins.Run(fc, 1, 855, templates, 99)
	if err != nil {
		t.Fatal(err)
	}
	miscalls, bases := 0, 0
	for _, r := range reads {
		for i := 0; i < len(r.Seq); i++ {
			bases++
			if r.Seq[i] != tmpl[i] && r.Seq[i] != 'N' {
				miscalls++
			}
		}
	}
	errRate := float64(miscalls) / float64(bases)
	if errRate > 0.05 {
		t.Errorf("error rate %.4f too high for default noise model", errRate)
	}
	if errRate == 0 {
		t.Error("error rate exactly 0: noise model not exercising miscalls")
	}
}

func TestQualityDecaysWithCycle(t *testing.T) {
	ins := NewInstrument("IL4", 72)
	fc := DefaultFlowcell(1)
	tmpl := strings.Repeat("ACGT", 18)
	templates := make([]string, 300)
	for i := range templates {
		templates[i] = tmpl
	}
	reads, err := ins.Run(fc, 1, 855, templates, 3)
	if err != nil {
		t.Fatal(err)
	}
	early, late := 0.0, 0.0
	for _, r := range reads {
		early += seq.AverageQuality(r.Qual[:12])
		late += seq.AverageQuality(r.Qual[60:])
	}
	if late >= early {
		t.Errorf("late-cycle quality %.1f >= early-cycle %.1f; phasing model broken",
			late/300, early/300)
	}
}

func TestAmbiguousTemplateCallsN(t *testing.T) {
	ins := NewInstrument("IL4", 10)
	fc := DefaultFlowcell(1)
	reads, err := ins.Run(fc, 1, 855, []string{"NNNNNNNNNN"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	n := strings.Count(reads[0].Seq, "N")
	if n < 5 {
		t.Errorf("only %d/10 N calls for an all-ambiguous template", n)
	}
}

func TestCallBaseFromSignal(t *testing.T) {
	// Clean signal: confident call.
	b, q := CallBaseFromSignal(Signal{1.0, 0.05, 0.08, 0.07}, 0.1)
	if b != 'A' {
		t.Errorf("called %q, want A", b)
	}
	if q < 30 {
		t.Errorf("clean signal quality %d, want >= 30", q)
	}
	// Ambiguous signal: N.
	b, q = CallBaseFromSignal(Signal{0.5, 0.5, 0.1, 0.1}, 0.1)
	if b != 'N' || q != 0 {
		t.Errorf("ambiguous signal called %q Q%d, want N Q0", b, q)
	}
	// Weak signal: N.
	b, _ = CallBaseFromSignal(Signal{0.2, 0.05, 0.05, 0.05}, 0.1)
	if b != 'N' {
		t.Errorf("weak signal called %q, want N", b)
	}
	// Each channel maps to its base.
	for ch, want := range []byte("ACGT") {
		var sig Signal
		sig[ch] = 1.0
		got, _ := CallBaseFromSignal(sig, 0.05)
		if got != want {
			t.Errorf("channel %d called %q, want %q", ch, got, want)
		}
	}
}

func TestRunRejectsBadLane(t *testing.T) {
	ins := NewInstrument("IL4", 36)
	fc := DefaultFlowcell(1)
	if _, err := ins.Run(fc, 0, 1, []string{"ACGT"}, 1); err == nil {
		t.Error("lane 0 accepted")
	}
	if _, err := ins.Run(fc, 9, 1, []string{"ACGT"}, 1); err == nil {
		t.Error("lane 9 accepted on 8-lane flowcell")
	}
}

func TestRunRejectsEmptyTemplate(t *testing.T) {
	ins := NewInstrument("IL4", 36)
	if _, err := ins.Run(DefaultFlowcell(1), 1, 1, []string{""}, 1); err == nil {
		t.Error("empty template accepted")
	}
}

func TestLaneFiles(t *testing.T) {
	ins := NewInstrument("IL4", 8)
	fc := DefaultFlowcell(2)
	lanes := [][]string{
		{"ACGTACGT", "GGGGCCCC"},
		{"TTTTAAAA"},
	}
	out, err := ins.LaneFiles(fc, 1, lanes, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out[0]) != 2 || len(out[1]) != 1 {
		t.Fatalf("shape = %d/%v", len(out), out)
	}
	if !strings.Contains(out[1][0].Name, ":2:2:") {
		t.Errorf("lane-2 read name %q missing flowcell:lane segment", out[1][0].Name)
	}
	if _, err := ins.LaneFiles(fc, 1, make([][]string, 9), 1); err == nil {
		t.Error("9 lanes accepted on 8-lane flowcell")
	}
}
