package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
)

// Data provenance management — the paper's closing future-work item:
// "When and how were short-reads sequenced, which alignment algorithm
// with certain parameters was used to align them against (a specific
// version of) the Human reference genome? These are central questions to
// control the quality of sequencing results."
//
// The engine records provenance in an ordinary system table
// (_provenance), so it is queryable with the same SQL as the data it
// describes, survives crashes through the normal WAL path, and rolls
// back with the transaction that produced the data.

// provenanceTable is the system table name.
const provenanceTable = "_provenance"

// ProvenanceRecord describes one derivation step.
type ProvenanceRecord struct {
	ID int64
	// Entity is what was produced, e.g. "table:Alignment" or
	// "blob:<guid>".
	Entity string
	// Activity names the producing step, e.g. "align", "import",
	// "consensus".
	Activity string
	// Tool and Params identify the program and its configuration.
	Tool   string
	Params string
	// Inputs lists the entities consumed, comma-separated.
	Inputs string
	// At is the wall-clock time of the step (unix nanoseconds).
	At int64
}

// ensureProvenanceTable creates the system table on first use.
func (db *Database) ensureProvenanceTable() error {
	if db.cat.Get(provenanceTable) != nil {
		return nil
	}
	bigT, _ := catalog.ParseType("BIGINT")
	strT, _ := catalog.ParseType("VARCHAR(MAX)")
	def := &catalog.Table{
		Name: provenanceTable,
		Columns: []catalog.Column{
			{Name: "p_id", Type: bigT, NotNull: true},
			{Name: "entity", Type: strT, NotNull: true},
			{Name: "activity", Type: strT, NotNull: true},
			{Name: "tool", Type: strT},
			{Name: "params", Type: strT},
			{Name: "inputs", Type: strT},
			{Name: "at", Type: bigT},
		},
	}
	if err := db.cat.Create(def); err != nil {
		return err
	}
	return db.openTableStorage(def)
}

// RecordProvenance appends a provenance record within the default
// session's current transaction (or its own autocommit one). The
// record's ID is returned. Creating the system table on first use is DDL
// and is not undone by a later rollback; the record itself is
// transactional.
func (db *Database) RecordProvenance(rec ProvenanceRecord) (int64, error) {
	return db.defaultSess.RecordProvenance(rec)
}

// RecordProvenance appends a provenance record within this session's
// transaction scope.
func (s *Session) RecordProvenance(rec ProvenanceRecord) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db := s.db
	if err := db.healthErr(); err != nil {
		return 0, err
	}
	// Exclusive: first use may create the system table (DDL), and the
	// exclusive lock keeps record-ID assignment race-free.
	db.mu.Lock()
	defer db.mu.Unlock()
	t := s.currentTxn()
	id, execErr := db.recordProvenanceInTxn(t, rec)
	if err := db.finishAuto(t, execErr); err != nil {
		return 0, err
	}
	return id, nil
}

// recordProvenanceInTxn inserts the record under an already-running
// transaction (used by import paths that bundle data + provenance).
func (db *Database) recordProvenanceInTxn(t *Txn, rec ProvenanceRecord) (int64, error) {
	if err := db.ensureProvenanceTable(); err != nil {
		return 0, err
	}
	td, err := db.table(provenanceTable)
	if err != nil {
		return 0, err
	}
	if rec.At == 0 {
		rec.At = time.Now().UnixNano()
	}
	rec.ID = td.insertSeq + 1
	err = db.insertRow(t, td, sqltypes.Row{
		sqltypes.NewInt(rec.ID),
		sqltypes.NewString(rec.Entity),
		sqltypes.NewString(rec.Activity),
		sqltypes.NewString(rec.Tool),
		sqltypes.NewString(rec.Params),
		sqltypes.NewString(rec.Inputs),
		sqltypes.NewInt(rec.At),
	})
	if err != nil {
		return 0, err
	}
	return rec.ID, nil
}

// Provenance returns the recorded derivation steps for an entity, oldest
// first. With transitive=true the lineage is followed through the Inputs
// edges (the provenance graph walk the paper asks for: which aligner,
// which reference version, which run).
func (db *Database) Provenance(entity string, transitive bool) ([]ProvenanceRecord, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.cat.Get(provenanceTable) == nil {
		return nil, nil
	}
	var all []ProvenanceRecord
	err := db.ScanTableNoLock(provenanceTable, func(row sqltypes.Row) error {
		all = append(all, ProvenanceRecord{
			ID:       row[0].I,
			Entity:   row[1].S,
			Activity: row[2].S,
			Tool:     row[3].S,
			Params:   row[4].S,
			Inputs:   row[5].S,
			At:       row[6].I,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	want := map[string]bool{entity: true}
	if transitive {
		// Iterate to a fixed point: inputs of matched records join the
		// frontier. Records are few; quadratic is fine.
		for changed := true; changed; {
			changed = false
			for _, r := range all {
				if !want[r.Entity] {
					continue
				}
				for _, in := range splitInputs(r.Inputs) {
					if !want[in] {
						want[in] = true
						changed = true
					}
				}
			}
		}
	}
	var out []ProvenanceRecord
	for _, r := range all {
		if want[r.Entity] {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func splitInputs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// BlobEntity renders the provenance entity name of a FileStream blob.
func BlobEntity(guid string) string { return "blob:" + guid }

// TableEntity renders the provenance entity name of a table.
func TableEntity(name string) string { return "table:" + strings.ToLower(name) }

// describeValues renders import metadata for auto-recorded provenance.
func describeValues(values map[string]sqltypes.Value) string {
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, values[k].AsString()))
	}
	return strings.Join(parts, " ")
}
