package core

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/sqltypes"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/vec"
)

// The Database implements plan.Provider: catalog lookups, function
// resolution and physical access paths.

// Table resolves a base table definition.
func (db *Database) Table(name string) *catalog.Table { return db.cat.Get(name) }

// Scalar resolves a scalar function (built-in or registered UDF).
func (db *Database) Scalar(name string) (expr.ScalarFunc, bool) {
	return db.scalars.Lookup(name)
}

// Agg resolves an aggregate (registered UDA or built-in).
func (db *Database) Agg(name string) (exec.AggFactory, bool) {
	if f, ok := db.aggs[lower(name)]; ok {
		return f, true
	}
	if f := exec.BuiltinAggregate(name); f != nil {
		return f, true
	}
	return nil, false
}

// TVF resolves a table-valued function.
func (db *Database) TVF(name string) (plan.TVF, bool) {
	f, ok := db.tvfs[lower(name)]
	return f, ok
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// RowCountEstimate returns the current table cardinality (an estimate:
// physical rows minus known-dead ones; in-flight inserts count).
func (db *Database) RowCountEstimate(t *catalog.Table) int64 {
	td := db.tables[t.ID]
	if td == nil {
		return 0
	}
	n := td.rowCount() - td.versions.deadCount()
	if n < 0 {
		n = 0
	}
	return n
}

// statsStaleDivisor: stats are stale once the table's modification
// counter has drifted by more than rowCount/divisor since ANALYZE (with
// a floor so tiny tables don't flap between fresh and stale).
const statsStaleDivisor = 5

// Stats returns the table's ANALYZE statistics, or nil when none were
// collected or the table has been modified too much since collection —
// the cheap invalidation the planner relies on to never trust a
// distribution the data has outgrown.
func (db *Database) Stats(t *catalog.Table) *stats.TableStats {
	td := db.tables[t.ID]
	if td == nil {
		return nil
	}
	ts := db.tstats.Get(t.ID)
	if ts == nil {
		return nil
	}
	drift := td.modCount.Load() - ts.ModCount
	if drift < 0 {
		drift = -drift
	}
	limit := ts.RowCount / statsStaleDivisor
	if limit < 64 {
		limit = 64
	}
	if drift > limit {
		return nil
	}
	return ts
}

// TableStatistics returns the (non-stale) collected statistics for a
// table by name, or nil; the external mirror of the Provider method for
// tests and benchmarks.
func (db *Database) TableStatistics(name string) *stats.TableStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	def := db.cat.Get(name)
	if def == nil {
		return nil
	}
	return db.Stats(def)
}

// poolTallyFrom builds the buffer-pool attribution tally for the
// profile of the query operator the context belongs to (nil when the
// statement runs uninstrumented — pool reads then count only in the
// global pool stats).
func poolTallyFrom(ctx *exec.Context) *storage.PoolTally {
	if ctx == nil || ctx.Prof == nil {
		return nil
	}
	return &storage.PoolTally{Hits: &ctx.Prof.PoolHits, Misses: &ctx.Prof.PoolMisses}
}

// spillStore adapts the storage spill manager to the operator-layer
// contract (exec names the interfaces, storage owns the file lifecycle).
type spillStore struct{ m *storage.SpillManager }

type spillFile struct{ *storage.SpillFile }

func (s spillStore) Create() (exec.SpillFile, error) {
	f, err := s.m.Create()
	if err != nil {
		return nil, err
	}
	return spillFile{f}, nil
}

// CreateRun satisfies exec.RunStore: sorted runs and aggregate overflow
// partitions are read exactly once, so their iterators stream pages
// straight from disk instead of caching them in the buffer pool.
func (s spillStore) CreateRun() (exec.SpillFile, error) {
	f, err := s.m.CreateRun()
	if err != nil {
		return nil, err
	}
	return spillFile{f}, nil
}

func (f spillFile) Iter() (exec.RowIterator, error) { return f.NewIterator(), nil }

// SealRun and IterRun satisfy exec.MultiRunFile: the external sort packs
// every run of one operator into a single temp file.
func (f spillFile) SealRun() (exec.RunSpan, error) {
	start, end, rows, bytes, err := f.SpillFile.SealRun()
	return exec.RunSpan{Start: start, End: end, Rows: rows, Bytes: bytes}, err
}

func (f spillFile) IterRun(span exec.RunSpan) (exec.RowIterator, error) {
	return f.NewRunIterator(span.Start, span.End, span.Rows), nil
}

// SpillStore exposes temp spill files (under <dir>/tmp, read through the
// shared buffer pool) to the planner's partitioned joins.
func (db *Database) SpillStore() exec.SpillStore { return spillStore{db.spill} }

// convertIterator unpacks SEQUENCE columns when the table uses the UDT.
type convertIterator struct {
	inner exec.RowIterator
	def   *catalog.Table
}

func (c *convertIterator) Next() (sqltypes.Row, bool, error) {
	row, ok, err := c.inner.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out, err := c.def.FromStorageRow(row)
	if err != nil {
		return nil, false, err
	}
	return out, true, nil
}

func (c *convertIterator) Close() error { return c.inner.Close() }

func (db *Database) wrapIterator(def *catalog.Table, it exec.RowIterator) exec.RowIterator {
	if def.HasSequenceColumns() {
		return &convertIterator{inner: it, def: def}
	}
	return it
}

// VectorizedScan reports whether the table's scan partitions deliver
// columnar batches: heap tables only (clustered scans are key-ordered
// row streams), unless vectorized execution is disabled.
func (db *Database) VectorizedScan(t *catalog.Table) bool {
	td := db.tables[t.ID]
	return !db.noVec && td != nil && td.heap != nil
}

// visibleHeapIterator filters an indexed heap scan down to the rows a
// snapshot may see. The visible set is rendered once at open as sorted
// disjoint index ranges; row indexes arrive in increasing order, so the
// filter is a monotonic pointer walk with early exit past the last range.
type visibleHeapIterator struct {
	it     *storage.HeapVersionIterator
	ranges []rowRange
	ri     int
}

func (v *visibleHeapIterator) Next() (sqltypes.Row, bool, error) {
	for {
		row, idx, ok, err := v.it.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		for v.ri < len(v.ranges) && idx >= v.ranges[v.ri].end {
			v.ri++
		}
		if v.ri >= len(v.ranges) {
			return nil, false, nil // nothing visible beyond this index
		}
		if idx >= v.ranges[v.ri].start {
			return row, true, nil
		}
	}
}

func (v *visibleHeapIterator) Close() error { return v.it.Close() }

// visibleBatchIterator is the batch-capable heap scan source: the row
// interface delegates to the version-filtered row iterator, while
// NextBatch serves columnar page batches with MVCC visibility applied as
// a selection-vector intersection — invisible rows are deselected, never
// decoded. Only one of the two interfaces is pulled per execution (the
// parent operator is either a row or a batch consumer), so nothing is
// read twice.
type visibleBatchIterator struct {
	rows    exec.RowIterator
	bi      *storage.HeapBatchIterator
	ranges  []rowRange
	ri      int
	seqCols []int
}

func (v *visibleBatchIterator) Next() (sqltypes.Row, bool, error) { return v.rows.Next() }

// NextBatch intersects the next page batch's selection with the visible
// ranges. Batch row s is global row Base+s; ranges are sorted and
// batches arrive in ascending Base order, so the intersection is one
// monotonic walk across the whole scan.
func (v *visibleBatchIterator) NextBatch() (*vec.Batch, error) {
	for {
		b, err := v.bi.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		sel := b.Sel[:0]
		for _, s := range b.Sel {
			idx := b.Base + int64(s)
			for v.ri < len(v.ranges) && idx >= v.ranges[v.ri].end {
				v.ri++
			}
			if v.ri >= len(v.ranges) {
				break
			}
			if idx >= v.ranges[v.ri].start {
				sel = append(sel, s)
			}
		}
		b.Sel = sel
		// SEQUENCE columns stay in packed storage form; the Packed mark
		// makes value materialization unpack them to the query
		// representation (what FromStorageRow does on the row path).
		for _, c := range v.seqCols {
			b.Cols[c].Packed = true
		}
		if len(b.Sel) > 0 {
			return b, nil
		}
		if v.ri >= len(v.ranges) {
			return nil, nil // nothing visible beyond this point
		}
	}
}

func (v *visibleBatchIterator) Close() error {
	berr := v.bi.Close()
	if err := v.rows.Close(); err != nil {
		return err
	}
	return berr
}

// HeapPageStats prices a zone-map-pruned scan: how many sealed pages
// survive the filters, and the total. (0, 0) means "no information" (not
// an open heap table) and the planner falls back to cardinality costing.
func (db *Database) HeapPageStats(t *catalog.Table, filters []storage.ZoneFilter) (kept, total int64) {
	td := db.tables[t.ID]
	if td == nil || td.heap == nil {
		return 0, 0
	}
	return td.heap.ZonePrunedPages(filters)
}

// ScanPartitions returns `parts` operators that together scan the table
// once: heap tables partition by sealed-page ranges (the tail rides with
// the last partition); clustered tables partition by key range. Each
// partition filters rows against the snapshot in the exec context its
// factory runs under — scans read a consistent version of the table
// while writers keep appending.
func (db *Database) ScanPartitions(t *catalog.Table, parts int) ([]exec.Operator, error) {
	return db.ScanPartitionsPruned(t, parts, nil)
}

// ScanPartitionsPruned is ScanPartitions with zone-map filters: sealed
// heap pages whose min/max ranges provably cannot satisfy every filter
// are skipped without a buffer-pool read. Filters are ignored for
// clustered tables.
func (db *Database) ScanPartitionsPruned(t *catalog.Table, parts int, filters []storage.ZoneFilter) ([]exec.Operator, error) {
	td := db.tables[t.ID]
	if td == nil {
		return nil, fmt.Errorf("core: no storage for table %s", t.Name)
	}
	if parts < 1 {
		parts = 1
	}
	if td.heap != nil {
		sealed := td.heap.SealedPages()
		if int64(parts) > sealed && sealed > 0 {
			parts = int(sealed)
		}
		if sealed == 0 {
			parts = 1
		}
		var seqCols []int
		for i := range td.def.Columns {
			if td.def.Columns[i].Type.Name == catalog.TypeSequence {
				seqCols = append(seqCols, i)
			}
		}
		vectorized := !db.noVec
		ops := make([]exec.Operator, 0, parts)
		for i := 0; i < parts; i++ {
			lo := sealed * int64(i) / int64(parts)
			hi := sealed * int64(i+1) / int64(parts)
			includeTail := i == parts-1
			tdc := td
			def := td.def
			ops = append(ops, &exec.Source{
				Label: fmt.Sprintf("%s pages [%d,%d)", t.Name, lo, hi),
				Factory: func(ctx *exec.Context) (exec.RowIterator, error) {
					snap, _ := ctx.Snapshot.(*Snapshot)
					tally := poolTallyFrom(ctx)
					// The tail partition re-captures the sealed-page count
					// at open ("extend"): pages sealed since planning stay
					// covered, and the visibility filter hides whatever
					// the snapshot should not see.
					ranges := tdc.versions.visibleRanges(snap)
					it := tdc.heap.NewVersionIterator(lo, hi, includeTail).
						SetZoneFilters(filters, &db.scanStats).SetPoolTally(tally)
					rows := db.wrapIterator(def, &visibleHeapIterator{it: it, ranges: ranges})
					if !vectorized {
						return rows, nil
					}
					return &visibleBatchIterator{
						rows: rows,
						bi: tdc.heap.NewBatchIterator(lo, hi, includeTail, &db.scanStats).
							SetZoneFilters(filters).SetPoolTally(tally),
						ranges:  ranges,
						seqCols: seqCols,
					}, nil
				},
			})
		}
		return ops, nil
	}
	// Clustered: range partitions (each ordered; ranges are contiguous so
	// an ordered gather preserves global order).
	ranges, err := db.KeyRanges(t, parts)
	if err != nil {
		return nil, err
	}
	ops := make([]exec.Operator, 0, len(ranges))
	for _, rg := range ranges {
		op, err := db.OrderedScanRange(t, rg[0], rg[1])
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// treeIterator adapts a btree range scan to rows, hiding keys the scan's
// snapshot cannot see. The btree iterator walks leaf pages unlatched, so
// the scan holds the table's write latch shared for its duration —
// writers to this clustered table wait for the scan, but scans never
// wait behind an open transaction (only behind individual row inserts).
type treeIterator struct {
	it     *btree.Iterator
	td     *tableData
	snap   *Snapshot
	locked bool
}

func (ti *treeIterator) Next() (sqltypes.Row, bool, error) {
	for {
		if !ti.it.Next() {
			return nil, false, ti.it.Err()
		}
		if !ti.td.versions.keyVisible(ti.it.Key(), ti.snap) {
			continue
		}
		row, _, err := ti.td.walCodec.Decode(ti.it.Value(), true)
		if err != nil {
			return nil, false, err
		}
		return row, true, nil
	}
}

func (ti *treeIterator) Close() error {
	ti.it.Close()
	if ti.locked {
		ti.td.writeMu.RUnlock()
		ti.locked = false
	}
	return nil
}

// OrderedScanRange scans a clustered table in key order over [lo, hi) of
// the first key column.
func (db *Database) OrderedScanRange(t *catalog.Table, lo, hi *sqltypes.Value) (exec.Operator, error) {
	td := db.tables[t.ID]
	if td == nil || td.tree == nil {
		return nil, fmt.Errorf("core: %s is not a clustered table", t.Name)
	}
	var startKey, endKey []byte
	var err error
	if lo != nil {
		startKey, err = btree.AppendKey(nil, sqltypes.Row{*lo})
		if err != nil {
			return nil, err
		}
	}
	if hi != nil {
		endKey, err = btree.AppendKey(nil, sqltypes.Row{*hi})
		if err != nil {
			return nil, err
		}
	}
	def := td.def
	return &exec.Source{
		Label: fmt.Sprintf("%s ordered", t.Name),
		Factory: func(ctx *exec.Context) (exec.RowIterator, error) {
			var snap *Snapshot
			if ctx != nil {
				snap, _ = ctx.Snapshot.(*Snapshot)
			}
			td.writeMu.RLock()
			it, err := td.tree.Seek(startKey, endKey)
			if err != nil {
				td.writeMu.RUnlock()
				return nil, err
			}
			return db.wrapIterator(def, &treeIterator{it: it, td: td, snap: snap, locked: true}), nil
		},
	}, nil
}

// KeyRanges splits the first (integer) clustered key column into up to
// `parts` contiguous ranges.
func (db *Database) KeyRanges(t *catalog.Table, parts int) ([][2]*sqltypes.Value, error) {
	td := db.tables[t.ID]
	if td == nil || td.tree == nil {
		return nil, fmt.Errorf("core: %s is not a clustered table", t.Name)
	}
	full := [][2]*sqltypes.Value{{nil, nil}}
	if parts <= 1 {
		return full, nil
	}
	minKey, ok, err := td.tree.MinKey()
	if err != nil || !ok {
		return full, err
	}
	maxKey, ok, err := td.tree.MaxKey()
	if err != nil || !ok {
		return full, err
	}
	lo, ok1 := btree.DecodeIntKeyPrefix(minKey)
	hi, ok2 := btree.DecodeIntKeyPrefix(maxKey)
	if !ok1 || !ok2 || hi-lo+1 < int64(parts) {
		return full, nil
	}
	span := hi - lo + 1
	out := make([][2]*sqltypes.Value, 0, parts)
	for i := 0; i < parts; i++ {
		var lb, ub *sqltypes.Value
		if i > 0 {
			v := sqltypes.NewInt(lo + span*int64(i)/int64(parts))
			lb = &v
		}
		if i < parts-1 {
			v := sqltypes.NewInt(lo + span*int64(i+1)/int64(parts))
			ub = &v
		}
		out = append(out, [2]*sqltypes.Value{lb, ub})
	}
	return out, nil
}
