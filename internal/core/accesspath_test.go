package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
)

// Access-path equivalence: the planner may answer a predicate through a
// full scan, a zone-map-pruned parallel scan, or a secondary-index range
// scan — three different physical routes to the same logical rows. These
// tests force each route and demand identical results, including under
// NULL key values and with an uncommitted concurrent transaction whose
// rows every route must refuse to surface.

// fuzzSelect runs the query under each forced access path and fails if
// any path disagrees with the cost-based plan.
func fuzzSelect(t *testing.T, db *Database, query string) {
	t.Helper()
	paths := []string{"", "full", "zonemap", "index"}
	var want []string
	for i, p := range paths {
		db.planner.ForcePath = p
		res, err := db.Exec(query)
		if err != nil {
			t.Fatalf("path %q: %s: %v", p, query, err)
		}
		got := canonResult(res)
		if i == 0 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("path %q: %s: %d rows, cost-based plan returned %d", p, query, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("path %q: %s: row %d differs:\n  %s\n  %s", p, query, j, got[j], want[j])
			}
		}
	}
}

// TestAccessPathEquivalenceFuzz seeds a table with NULLs and duplicate
// keys, builds an index, seals zone maps, opens an in-flight transaction,
// and sweeps randomized sargable (and some non-sargable) predicates
// across all forced access paths at DOP 4.
func TestAccessPathEquivalenceFuzz(t *testing.T) {
	db, err := Open(t.TempDir(), Options{DOP: 4, ParallelThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defer func() { db.planner.ForcePath = "" }()

	mustExec(t, db, `CREATE TABLE fz (a INT, b INT, s VARCHAR(16))`)
	rng := rand.New(rand.NewSource(2009))
	var vals []string
	for i := 0; i < 3000; i++ {
		a := fmt.Sprint(rng.Intn(500))
		if i%11 == 0 {
			a = "NULL"
		}
		vals = append(vals, fmt.Sprintf("(%s, %d, 's%d')", a, rng.Intn(1000), i%7))
		if len(vals) == 50 {
			mustExec(t, db, "INSERT INTO fz VALUES "+strings.Join(vals, ", "))
			vals = vals[:0]
		}
	}
	mustExec(t, db, `CREATE INDEX idx_a ON fz(a)`)
	mustExec(t, db, `CHECKPOINT`) // seal pages -> zone maps
	mustExec(t, db, `ANALYZE`)    // stats -> selectivity estimates

	// A rolled-back insert: its index entries must never surface.
	s := db.NewSession()
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO fz VALUES (250, 250, 'rolled')`); err != nil {
		t.Fatal(err)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	// An in-flight transaction held open across the whole fuzz sweep: no
	// access path may see its rows.
	inflight := db.NewSession()
	if err := inflight.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := inflight.Exec(fmt.Sprintf(`INSERT INTO fz VALUES (%d, %d, 'flight')`, i*12, i)); err != nil {
			t.Fatal(err)
		}
	}
	defer inflight.Rollback()

	// The index route must actually be an index scan when forced.
	db.planner.ForcePath = "index"
	res := mustExec(t, db, `EXPLAIN SELECT a, b, s FROM fz WHERE a = 250`)
	if !strings.Contains(res.Plan, "Index Scan") {
		t.Fatalf("forced index path did not plan an Index Scan:\n%s", res.Plan)
	}

	for i := 0; i < 60; i++ {
		k := rng.Intn(520) - 10 // occasionally out of range entirely
		k2 := k + rng.Intn(80)
		m := rng.Intn(1000)
		var pred string
		switch i % 6 {
		case 0:
			pred = fmt.Sprintf("a = %d", k)
		case 1:
			pred = fmt.Sprintf("a > %d AND a <= %d", k, k2)
		case 2:
			pred = fmt.Sprintf("a >= %d", k)
		case 3:
			pred = fmt.Sprintf("a < %d", k)
		case 4:
			pred = fmt.Sprintf("a >= %d AND a < %d AND b < %d", k, k2, m)
		case 5:
			// Not sargable: the index path must degrade, not misfire.
			pred = fmt.Sprintf("a = %d OR b = %d", k, m)
		}
		fuzzSelect(t, db, "SELECT a, b, s FROM fz WHERE "+pred)
	}
	// Aggregates and ordering over each path.
	fuzzSelect(t, db, `SELECT s, COUNT(*), SUM(b) FROM fz WHERE a >= 100 AND a < 300 GROUP BY s`)
	fuzzSelect(t, db, `SELECT a, b FROM fz WHERE a > 450 ORDER BY a, b, s`)
}

const indexTortureRows = 500

// runIndexBuildWorkload loads a table, checkpoints, arms the injector,
// and attempts CREATE INDEX — so every armed failpoint sits inside the
// two-phase index build. Returns the failpoints reached.
func runIndexBuildWorkload(t *testing.T, dir string, inj *fault.Injector) int64 {
	t.Helper()
	db, err := Open(dir, Options{DOP: 2, FaultInjector: inj})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := db.Exec(`CREATE TABLE it (k BIGINT, v BIGINT)`); err != nil {
		t.Fatalf("ddl: %v", err)
	}
	var vals []string
	for i := 0; i < indexTortureRows; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d)", i, (i*7919)%indexTortureRows))
		if len(vals) == 50 {
			if _, err := db.Exec("INSERT INTO it VALUES " + strings.Join(vals, ", ")); err != nil {
				t.Fatalf("insert: %v", err)
			}
			vals = vals[:0]
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("setup checkpoint: %v", err)
	}
	inj.Arm()
	if _, err := db.Exec(`CREATE INDEX idx_v ON it(v)`); err != nil && !inj.Crashed() {
		t.Fatalf("CREATE INDEX failed without a crash: %v", err)
	}
	points := inj.Points()
	_ = db.Close() // errors expected after a crash
	return points
}

// verifyIndexTorture reopens without the injector and checks the
// whole-index-or-none promise: either the catalog names idx_v and a
// forced index scan agrees with a full scan over every probe, or the
// index is entirely absent, queries still answer correctly, and a fresh
// CREATE INDEX succeeds. Half-built shadow files must be gone either way.
func verifyIndexTorture(t *testing.T, dir, label string) {
	t.Helper()
	db, err := Open(dir, Options{DOP: 2})
	if err != nil {
		t.Fatalf("%s: reopen after crash failed: %v", label, err)
	}
	defer db.Close()
	defer func() { db.planner.ForcePath = "" }()
	if err := db.Health(); err != nil {
		t.Errorf("%s: recovered database unhealthy: %v", label, err)
	}
	if leftovers, _ := filepath.Glob(filepath.Join(dir, "*.building")); len(leftovers) != 0 {
		t.Errorf("%s: half-built index shadows survived recovery: %v", label, leftovers)
	}

	hadIdx := db.Catalog().Get("it").IndexByName("idx_v") != nil
	if !hadIdx {
		// The "none" arm must leave a clean slate: rebuilding works.
		if _, err := db.Exec(`CREATE INDEX idx_v ON it(v)`); err != nil {
			t.Fatalf("%s: rebuilding the lost index: %v", label, err)
		}
	}
	probes := []string{
		"v = 123",
		"v >= 100 AND v < 200",
		"v > 450",
	}
	for _, pred := range probes {
		q := "SELECT k, v FROM it WHERE " + pred
		db.planner.ForcePath = "full"
		want := canonResult(mustExec(t, db, q))
		db.planner.ForcePath = "index"
		res := mustExec(t, db, "EXPLAIN "+q)
		if !strings.Contains(res.Plan, "Index Scan") {
			t.Fatalf("%s: forced index probe planned no Index Scan (had=%v):\n%s", label, hadIdx, res.Plan)
		}
		got := canonResult(mustExec(t, db, q))
		if len(got) != len(want) {
			t.Fatalf("%s: %s: index path %d rows, full scan %d (index present at reopen: %v)",
				label, pred, len(got), len(want), hadIdx)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: %s: row %d differs between index and full scan", label, pred, i)
			}
		}
	}
}

// TestIndexBuildCrashTorture sweeps a crash across every I/O of the
// two-phase index build (sort runs, shadow bulk-load, WAL intent, rename,
// catalog commit, closing checkpoint) and asserts recovery always lands
// on a whole index or none.
func TestIndexBuildCrashTorture(t *testing.T) {
	baseDir := filepath.Join(t.TempDir(), "base")
	baseInj := fault.New()
	points := runIndexBuildWorkload(t, baseDir, baseInj)
	if baseInj.Crashed() {
		t.Fatal("baseline run crashed with no rules")
	}
	if points == 0 {
		t.Fatal("CREATE INDEX reached no failpoints")
	}
	if err := baseInj.WriteBack(); err != nil {
		t.Fatal(err)
	}
	verifyIndexTorture(t, baseDir, "baseline")

	target := int64(30)
	if testing.Short() {
		target = 10
	}
	stride := points / target
	if stride < 1 {
		stride = 1
	}
	crashes := 0
	for k := int64(1); k <= points; k += stride {
		rule := &fault.Rule{Nth: k, Kind: fault.KindCrash}
		if k%3 == 0 {
			rule.TornFrac = 0.6 // torn final write: partial sector on the floor
		}
		inj := fault.New(rule)
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("crash%d", k))
		runIndexBuildWorkload(t, dir, inj)
		if !inj.Crashed() {
			t.Fatalf("crash point %d never fired: build is not deterministic", k)
		}
		if err := inj.PersistErr(); err != nil {
			t.Fatalf("crash point %d: persisting crash image: %v", k, err)
		}
		verifyIndexTorture(t, dir, fmt.Sprintf("crash@%d", k))
		crashes++
	}
	t.Logf("%d failpoints in CREATE INDEX, %d crash points swept", points, crashes)
}
