package core

import (
	"fmt"

	"repro/internal/sqltypes"
	"repro/internal/wal"
)

// Txn is one MVCC transaction: a snapshot fixing what it reads plus
// per-table write sets (heap version spans, clustered keys, blobs) that
// commit flips visible or rollback undoes. Every session owns its own
// transaction handle; there is no global writer slot.
type Txn struct {
	id         uint64
	db         *Database
	snap       *Snapshot
	autocommit bool
	explicit   bool // counted by the txn manager (BEGIN ... COMMIT)
	began      bool // RecBegin appended
	logged     bool // WAL-only effects (e.g. ANALYZE images) need a commit record
	finished   bool
	// abortOnly is set when a statement left the transaction's write set
	// partially applied but fully undoable (e.g. a failed secondary-index
	// insert whose successful sibling entries are in idxUndo): the
	// statement failed alone, the database stays healthy, but COMMIT must
	// refuse and roll back instead — publishing the partial statement
	// would be silent wrong results.
	abortOnly error
	writes    map[uint32]*txnWrites
	blobsMade []string
}

// txnWrites is one transaction's write set against one table.
type txnWrites struct {
	td      *tableData
	spans   []*verSpan  // heap version spans owned by this txn
	keys    [][]byte    // clustered keys inserted by this txn
	idxUndo []indexUndo // secondary-index entries to delete on rollback
	rows    int64
}

// indexUndo is one secondary-index entry inserted by a transaction.
type indexUndo struct {
	ix  *indexData
	key []byte
}

// newTxn starts a transaction with a fresh snapshot.
func (db *Database) newTxn(autocommit bool) *Txn {
	id, snap := db.tm.begin(!autocommit)
	return &Txn{
		id:         id,
		db:         db,
		snap:       snap,
		autocommit: autocommit,
		explicit:   !autocommit,
		writes:     map[uint32]*txnWrites{},
	}
}

func (t *Txn) tableWrites(td *tableData) *txnWrites {
	w := t.writes[td.def.ID]
	if w == nil {
		w = &txnWrites{td: td}
		t.writes[td.def.ID] = w
	}
	return w
}

func (t *Txn) hasWrites() bool {
	return len(t.writes) > 0 || len(t.blobsMade) > 0 || t.logged
}

// beginWAL lazily logs RecBegin before the transaction's first write.
func (t *Txn) beginWAL() error {
	if t.began {
		return nil
	}
	if err := t.db.wal.Append(wal.Record{Type: wal.RecBegin, Txn: t.id}); err != nil {
		return err
	}
	t.began = true
	return nil
}

// endTxn releases the transaction's snapshot pin and explicit slot.
func (db *Database) endTxn(t *Txn) {
	db.tm.releaseSnapshot(t.snap)
	if t.explicit {
		db.tm.endExplicit()
	}
}

// markAborted hides every write of t from all snapshots without touching
// storage — used when physical undo is impossible (failed commit flush on
// a poisoned database). The rows stay until checkpoint compaction or
// recovery.
func (t *Txn) markAborted() {
	for _, w := range t.writes {
		w.td.versions.abortSpans(w.spans)
		w.td.versions.markKeysDead(w.keys)
	}
}

// commitTxn drives the pipelined commit: the commit sequence is assigned
// and the RecCommit appended under one short txn-manager critical section
// (so WAL order equals commit order — the only serialized step), then the
// caller rides the WAL's leader/follower group fsync alongside other
// committers, and finally visibility is published. Concurrent commits
// overlap everywhere except the append point.
func (db *Database) commitTxn(t *Txn) error {
	if t.finished {
		return fmt.Errorf("core: transaction already finished")
	}
	if t.abortOnly != nil {
		// A statement left a partial, undoable write set; the only legal
		// exit is rollback. The commit request surfaces the original error.
		reason := t.abortOnly
		if err := db.rollbackTxn(t); err != nil {
			return fmt.Errorf("core: transaction must roll back (%v); rollback failed: %w", reason, err)
		}
		return fmt.Errorf("core: transaction rolled back instead of committing: %w", reason)
	}
	t.finished = true
	defer db.endTxn(t)
	if !t.hasWrites() {
		return nil // read-only: nothing to log or publish
	}
	tm := db.tm
	tm.mu.Lock()
	err := db.wal.Append(wal.Record{Type: wal.RecCommit, Txn: t.id})
	var cseq uint64
	if err == nil {
		tm.nextCommitSeq++
		cseq = tm.nextCommitSeq
	}
	tm.mu.Unlock()
	if err != nil {
		// Nothing reached the log; no sequence was burned. The writes
		// can never become visible.
		t.markAborted()
		db.poison(fmt.Errorf("core: commit of txn %d failed: %w", t.id, err))
		return err
	}
	if err := db.wal.Flush(); err != nil { // durability point (group fsync)
		// The commit record may or may not have hit disk — recovery
		// decides from the log after reopen. In this process the txn is
		// treated as aborted, and the database is poisoned so no later
		// statement can observe the ambiguity. Publish the sequence so
		// the visibility horizon is not wedged behind the gap.
		t.markAborted()
		db.poison(fmt.Errorf("core: commit flush of txn %d failed: %w", t.id, err))
		tm.publish(cseq)
		return err
	}
	for _, w := range t.writes {
		w.td.versions.commit(w.spans, w.keys, cseq)
		// Stats staleness counts committed rows only; rolled-back inserts
		// must not inflate the ANALYZE drift counter.
		w.td.modCount.Add(w.rows)
	}
	tm.publish(cseq)
	return nil
}

// rollbackTxn undoes the transaction: heap spans are marked dead (the
// rows linger, invisible, until checkpoint compaction), clustered keys
// are physically deleted, created blobs removed. A failure mid-undo
// leaves half-reverted storage, so it poisons the database: every later
// statement fails until the file set is reopened and WAL recovery —
// which replays only committed transactions — rebuilds a clean image.
func (db *Database) rollbackTxn(t *Txn) error {
	if t.finished {
		return fmt.Errorf("core: transaction already finished")
	}
	t.finished = true
	defer db.endTxn(t)
	if !t.hasWrites() {
		return nil
	}
	// Best-effort abort record, no flush: recovery treats a missing
	// commit record as an abort, so losing this record is harmless.
	_ = db.wal.Append(wal.Record{Type: wal.RecAbort, Txn: t.id})
	var undoErr error
	for _, w := range t.writes {
		w.td.versions.abortSpans(w.spans)
		if len(w.idxUndo) > 0 {
			// Best effort: a failed delete leaves an entry at a dead heap
			// position, which scans never surface (visibility filters by
			// position) and the next compaction rebuild removes.
			w.td.writeMu.Lock()
			for _, u := range w.idxUndo {
				_, _ = u.ix.tree.Delete(u.key)
			}
			w.td.writeMu.Unlock()
		}
		if len(w.keys) == 0 {
			continue
		}
		if err := db.inj.Point("txn.undo"); err != nil {
			// Storage failed before any key could be deleted; keep every
			// entry as a dead mask so no key silently resurfaces.
			w.td.versions.markKeysDead(w.keys)
			if undoErr == nil {
				undoErr = fmt.Errorf("undo %s keys: %w", w.td.def.Name, err)
			}
			continue
		}
		w.td.writeMu.Lock()
		failed := false
		for _, k := range w.keys {
			if _, err := w.td.tree.Delete(k); err != nil {
				failed = true
				if undoErr == nil {
					undoErr = fmt.Errorf("undo %s key: %w", w.td.def.Name, err)
				}
			}
		}
		w.td.writeMu.Unlock()
		if failed {
			// Some keys may physically remain; keep their version entries
			// as dead masks instead of dropping them.
			w.td.versions.markKeysDead(w.keys)
		} else {
			w.td.versions.dropKeys(w.keys)
		}
	}
	for _, guid := range t.blobsMade {
		if err := db.blobs.Delete(guid); err != nil && undoErr == nil {
			undoErr = fmt.Errorf("undo blob %s: %w", guid, err)
		}
	}
	if undoErr != nil {
		err := fmt.Errorf("core: rollback of txn %d failed mid-undo: %w", t.id, undoErr)
		db.poison(err)
		return err
	}
	return nil
}

// finishAuto commits or rolls back an autocommit transaction at the end
// of its statement (explicit ones wait for COMMIT/ROLLBACK).
func (db *Database) finishAuto(t *Txn, execErr error) error {
	if !t.autocommit {
		return execErr
	}
	if execErr != nil {
		if rbErr := db.rollbackTxn(t); rbErr != nil {
			return fmt.Errorf("%w (rollback also failed: %v)", execErr, rbErr)
		}
		return execErr
	}
	return db.commitTxn(t)
}

// insertRow validates, logs and applies one row insert within t. The
// table's write latch serializes row appends (and the duplicate-key
// probe) against other writers; readers never take it.
func (db *Database) insertRow(t *Txn, td *tableData, row sqltypes.Row) error {
	stored, err := td.def.ToStorageRow(row)
	if err != nil {
		return err
	}
	img, err := td.walCodec.EncodeAppend(nil, stored)
	if err != nil {
		return err
	}
	w := t.tableWrites(td)
	td.writeMu.Lock()
	defer td.writeMu.Unlock()
	if td.tree != nil {
		key, err := td.pkKey(stored)
		if err != nil {
			return err
		}
		// Probe before inserting: Insert upserts, so letting it run first
		// would clobber the existing row image before the duplicate check
		// could reject the statement.
		if _, exists, err := td.tree.Get(key); err != nil {
			return err
		} else if exists {
			return fmt.Errorf("core: duplicate primary key in %s", td.def.Name)
		}
		if err := t.beginWAL(); err != nil {
			return err
		}
		rowIdx := td.insertSeq
		if err := db.wal.Append(wal.Record{
			Type: wal.RecInsert, Txn: t.id, Table: td.def.ID,
			RowIndex: rowIdx, Data: img,
		}); err != nil {
			return err
		}
		// Version entry before the physical insert: an absent entry means
		// "visible to everyone", so the key must be masked first.
		td.versions.noteKey(t.id, key)
		w.keys = append(w.keys, key)
		if _, err := td.tree.Insert(key, img); err != nil {
			return err // rollback deletes the (absent) key and drops the mask
		}
		td.insertSeq = rowIdx + 1
		w.rows++
		return nil
	}
	if err := t.beginWAL(); err != nil {
		return err
	}
	rowIdx := td.insertSeq
	if err := db.wal.Append(wal.Record{
		Type: wal.RecInsert, Txn: t.id, Table: td.def.ID,
		RowIndex: rowIdx, Data: img,
	}); err != nil {
		return err
	}
	if sp := td.versions.noteInsert(t.id, rowIdx); sp != nil {
		w.spans = append(w.spans, sp)
	}
	td.insertSeq = rowIdx + 1
	w.rows++
	if err := td.heap.Append(stored); err != nil {
		// The span is recorded but the physical append failed: the heap
		// position is burned and storage state is unknown. Poison.
		db.poison(fmt.Errorf("core: heap append %s: %w", td.def.Name, err))
		return err
	}
	// Maintain secondary indexes under the same write latch. Each
	// successful entry is recorded in the undo list immediately, so a
	// failure part-way is fully undoable: the statement fails, rollback
	// (or the autocommit abort) deletes the entries already inserted and
	// marks the heap span dead, and the database stays healthy. Inside an
	// explicit transaction the handle flips to abort-only — COMMIT would
	// otherwise publish a row missing from the failed index.
	for _, ix := range td.indexes {
		key, err := indexEntryKey(ix.cols, stored, rowIdx)
		if err == nil {
			_, err = ix.tree.Insert(key, nil)
		}
		if err != nil {
			err = fmt.Errorf("core: index %s maintenance on %s: %w", ix.name, td.def.Name, err)
			t.abortOnly = err
			return err
		}
		w.idxUndo = append(w.idxUndo, indexUndo{ix: ix, key: key})
	}
	return nil
}

// createBlobInTxn imports a blob under transactional control.
func (db *Database) createBlobInTxn(t *Txn, guid, srcPath string) (int64, error) {
	if err := t.beginWAL(); err != nil {
		return 0, err
	}
	if err := db.wal.Append(wal.Record{
		Type: wal.RecBlobCreate, Txn: t.id, Data: []byte(guid),
	}); err != nil {
		return 0, err
	}
	n, err := db.blobs.CreateFromFile(guid, srcPath)
	if err != nil {
		return 0, err
	}
	t.blobsMade = append(t.blobsMade, guid)
	return n, nil
}
