package core

import (
	"fmt"

	"repro/internal/sqltypes"
	"repro/internal/wal"
)

// Txn tracks a transaction's undo information: per-table pre-transaction
// row counts for heap truncation, inserted clustered keys for deletion,
// and created blobs for removal.
type Txn struct {
	id         uint64
	db         *Database
	heapMarks  map[uint32]int64 // table id -> row count at txn start
	treeKeys   map[uint32][][]byte
	blobsMade  []string
	autocommit bool
}

// newTxn starts a transaction (callers hold db.mu).
func (db *Database) newTxn(autocommit bool) *Txn {
	db.txnSeq++
	return &Txn{
		id:         db.txnSeq,
		db:         db,
		heapMarks:  map[uint32]int64{},
		treeKeys:   map[uint32][][]byte{},
		autocommit: autocommit,
	}
}

// Begin opens an explicit transaction.
func (db *Database) Begin() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn != nil {
		return fmt.Errorf("core: a transaction is already open")
	}
	db.txn = db.newTxn(false)
	return nil
}

// Commit commits the open transaction.
func (db *Database) Commit() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn == nil {
		return fmt.Errorf("core: no open transaction")
	}
	err := db.commitTxnLocked(db.txn)
	db.txn = nil
	return err
}

func (db *Database) commitTxnLocked(t *Txn) error {
	if err := db.wal.Append(wal.Record{Type: wal.RecCommit, Txn: t.id}); err != nil {
		return err
	}
	return db.wal.Flush() // durability point
}

// Rollback aborts the open transaction, undoing its effects.
func (db *Database) Rollback() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn == nil {
		return fmt.Errorf("core: no open transaction")
	}
	err := db.rollbackTxnLocked(db.txn)
	db.txn = nil
	return err
}

func (db *Database) rollbackTxnLocked(t *Txn) error {
	if err := db.wal.Append(wal.Record{Type: wal.RecAbort, Txn: t.id}); err != nil {
		return err
	}
	if err := db.wal.Flush(); err != nil {
		return err
	}
	// Undo storage effects.
	for id, mark := range t.heapMarks {
		td := db.tables[id]
		if td == nil || td.heap == nil {
			continue
		}
		if err := td.heap.Truncate(mark); err != nil {
			return err
		}
		td.insertSeq = mark
	}
	for id, keys := range t.treeKeys {
		td := db.tables[id]
		if td == nil || td.tree == nil {
			continue
		}
		for _, k := range keys {
			if _, err := td.tree.Delete(k); err != nil {
				return err
			}
		}
		td.insertSeq = td.tree.Count()
	}
	for _, guid := range t.blobsMade {
		if err := db.blobs.Delete(guid); err != nil {
			return err
		}
	}
	return nil
}

// currentTxnLocked returns the open transaction or a fresh autocommit one.
func (db *Database) currentTxnLocked() *Txn {
	if db.txn != nil {
		return db.txn
	}
	return db.newTxn(true)
}

// finishAutoLocked commits an autocommit transaction (explicit ones wait
// for COMMIT/ROLLBACK).
func (db *Database) finishAutoLocked(t *Txn, execErr error) error {
	if !t.autocommit {
		return execErr
	}
	if execErr != nil {
		if rbErr := db.rollbackTxnLocked(t); rbErr != nil {
			return fmt.Errorf("%w (rollback also failed: %v)", execErr, rbErr)
		}
		return execErr
	}
	return db.commitTxnLocked(t)
}

// insertRow validates, logs and applies one row insert within t.
func (db *Database) insertRow(t *Txn, td *tableData, row sqltypes.Row) error {
	stored, err := td.def.ToStorageRow(row)
	if err != nil {
		return err
	}
	img, err := td.walCodec.EncodeAppend(nil, stored)
	if err != nil {
		return err
	}
	// Remember undo info before the first touch.
	if td.heap != nil {
		if _, ok := t.heapMarks[td.def.ID]; !ok {
			t.heapMarks[td.def.ID] = td.heap.RowCount()
		}
	}
	rowIdx := td.insertSeq
	if err := db.wal.Append(wal.Record{
		Type: wal.RecInsert, Txn: t.id, Table: td.def.ID,
		RowIndex: rowIdx, Data: img,
	}); err != nil {
		return err
	}
	if td.heap != nil {
		if err := td.heap.Append(stored); err != nil {
			return err
		}
	} else {
		key, err := td.pkKey(stored)
		if err != nil {
			return err
		}
		replaced, err := td.tree.Insert(key, img)
		if err != nil {
			return err
		}
		if replaced {
			return fmt.Errorf("core: duplicate primary key in %s", td.def.Name)
		}
		t.treeKeys[td.def.ID] = append(t.treeKeys[td.def.ID], key)
	}
	td.insertSeq = rowIdx + 1
	td.modCount.Add(1)
	return nil
}

// createBlobInTxn imports a blob under transactional control.
func (db *Database) createBlobInTxn(t *Txn, guid, srcPath string) (int64, error) {
	if err := db.wal.Append(wal.Record{
		Type: wal.RecBlobCreate, Txn: t.id, Data: []byte(guid),
	}); err != nil {
		return 0, err
	}
	n, err := db.blobs.CreateFromFile(guid, srcPath)
	if err != nil {
		return 0, err
	}
	t.blobsMade = append(t.blobsMade, guid)
	return n, nil
}
