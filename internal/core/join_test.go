package core

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

// loadJoinTables populates two heap tables large enough for the parallel
// planner: nl "reads" rows and nr "aligns" rows sharing integer keys in
// [0, keySpace).
func loadJoinTables(t *testing.T, db *Database, nl, nr, keySpace int) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE reads (k INT, payload VARCHAR(40))`)
	mustExec(t, db, `CREATE TABLE aligns (k INT, tag VARCHAR(40))`)
	mk := func(n int, side string) []sqltypes.Row {
		rows := make([]sqltypes.Row, n)
		for i := 0; i < n; i++ {
			rows[i] = sqltypes.Row{
				sqltypes.NewInt(int64(i % keySpace)),
				sqltypes.NewString(fmt.Sprintf("%s-%d", side, i)),
			}
		}
		return rows
	}
	if err := db.InsertRows("reads", mk(nl, "r")); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("aligns", mk(nr, "a")); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CHECKPOINT")
}

func canonResult(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

// TestJoinSpillsAndMatchesInMemory is the end-to-end acceptance check: the
// same SQL join run with an ample budget and with a budget far smaller
// than the build side must return identical rows, with spill counters
// reported via Database.ExecStats, and the temp spill files cleaned up.
func TestJoinSpillsAndMatchesInMemory(t *testing.T) {
	const sql = `SELECT payload, tag FROM reads JOIN aligns ON reads.k = aligns.k WHERE aligns.k < 40`
	run := func(budget int64) ([]string, *Database) {
		dir := filepath.Join(t.TempDir(), "db")
		db, err := Open(dir, Options{
			DOP:               4,
			ParallelThreshold: 256,
			JoinMemoryBudget:  budget,
			JoinPartitions:    8,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		loadJoinTables(t, db, 3000, 2500, 500)
		// The parallel partitioned join must actually be planned.
		explain := mustExec(t, db, "EXPLAIN "+sql)
		if !strings.Contains(explain.Plan, "Hash Match (Partitioned Inner Join)") {
			t.Fatalf("expected partitioned join plan:\n%s", explain.Plan)
		}
		return canonResult(mustExec(t, db, sql)), db
	}

	inMem, memDB := run(-1) // negative = unlimited
	if s := memDB.ExecStats().Join; s.SpilledPartitions != 0 {
		t.Fatalf("unlimited budget spilled: %+v", s)
	}

	spilled, spillDB := run(4 << 10) // 4 KB budget << the ~28 KB build side
	s := spillDB.ExecStats().Join
	if s.SpilledPartitions == 0 || s.SpilledBuildRows == 0 || s.SpilledProbeRows == 0 {
		t.Fatalf("expected spill activity with 4 KB budget, got %+v", s)
	}
	if s.SpillRecursions == 0 {
		t.Fatalf("expected spilled partitions to be re-joined, got %+v", s)
	}
	if !reflect.DeepEqual(inMem, spilled) {
		t.Fatalf("spilled join returned %d rows, in-memory %d", len(spilled), len(inMem))
	}
	if len(spilled) == 0 {
		t.Fatal("join returned no rows")
	}
	// Spill temp files are released once the query finishes.
	tmpDir := filepath.Join(spillDB.Dir(), "tmp")
	if entries, err := os.ReadDir(tmpDir); err == nil && len(entries) > 0 {
		t.Errorf("%d spill files left behind in %s", len(entries), tmpDir)
	}
}

// TestJoinStatsAccumulate checks the counters are cumulative across
// queries and cheap to snapshot mid-stream.
func TestJoinStatsAccumulate(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "db"), Options{
		DOP: 2, ParallelThreshold: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	loadJoinTables(t, db, 1500, 1200, 100)
	before := db.ExecStats()
	mustExec(t, db, `SELECT payload FROM reads JOIN aligns ON reads.k = aligns.k WHERE aligns.k = 1`)
	delta := db.ExecStats().Sub(before).Join
	if delta.BuildRows == 0 || delta.ProbeRows == 0 {
		t.Fatalf("join counters did not advance: %+v", delta)
	}
}
