package core

import (
	"fmt"

	"repro/internal/blob"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/sqltypes"
)

// RegisterScalar installs a scalar user-defined function — the engine's
// counterpart of a CLR scalar UDF (paper Section 2.3.2).
func (db *Database) RegisterScalar(name string, fn expr.ScalarFunc) {
	db.scalars.Register(name, fn)
}

// RegisterAggregate installs a user-defined aggregate. Because the
// AggState contract includes Merge, the engine parallelizes UDAs exactly
// like built-in aggregates (paper Section 2.3.4).
func (db *Database) RegisterAggregate(name string, factory exec.AggFactory) {
	db.aggs[lower(name)] = factory
}

// RegisterTVF installs a table-valued function with the pull-model
// iterator contract of the paper's Section 4.1.
func (db *Database) RegisterTVF(name string, tvf plan.TVF) {
	db.tvfs[lower(name)] = tvf
}

// registerEngineFunctions installs the engine-provided scalars that need
// database state: NEWID() and the FileStream accessors standing in for the
// paper's reads.PathName() / DATALENGTH(reads) column methods.
func (db *Database) registerEngineFunctions() {
	db.scalars.Register("newid", func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 0 {
			return sqltypes.Null, fmt.Errorf("core: NEWID takes no arguments")
		}
		return sqltypes.NewString(blob.NewGUID()), nil
	})
	db.scalars.Register("filepathname", func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 1 {
			return sqltypes.Null, fmt.Errorf("core: FILEPATHNAME takes the blob guid")
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		p, err := db.blobs.PathName(args[0].AsString())
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewString(p), nil
	})
	db.scalars.Register("filedatalength", func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 1 {
			return sqltypes.Null, fmt.Errorf("core: FILEDATALENGTH takes the blob guid")
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		n, err := db.blobs.Size(args[0].AsString())
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewInt(n), nil
	})
}
