package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/fault"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Secondary indexes are nonclustered B+-trees over heap tables. Each entry
// key is the indexed column values (storage representation, order-preserving
// encoding) followed by the row's heap position, which makes every entry
// unique; the value is empty. Scans resolve positions back to rows through
// the buffer pool and apply MVCC visibility per position, so an index never
// needs its own version metadata — the heap's spans govern it.
//
// The physical index covers every heap row, dead or alive, exactly like the
// heap file itself: rolled-back rows leave entries that visibility filtering
// hides and the next checkpoint compaction rebuilds away.

// indexData is one open secondary index on a heap table.
type indexData struct {
	name string
	cols []int
	tree *btree.BTree
	path string
}

func (db *Database) indexPath(def *catalog.Table, name string) string {
	return filepath.Join(db.dir, fmt.Sprintf("t%d_%s.ix_%s.btree", def.ID, sanitize(def.Name), sanitize(name)))
}

// indexEntryKey builds the entry key for one storage row at heap position
// rowIdx.
func indexEntryKey(cols []int, stored sqltypes.Row, rowIdx int64) ([]byte, error) {
	vals := make(sqltypes.Row, len(cols))
	for i, c := range cols {
		vals[i] = stored[c]
	}
	key, err := btree.AppendKey(nil, vals)
	if err != nil {
		return nil, err
	}
	return btree.AppendKey(key, sqltypes.Row{sqltypes.NewInt(rowIdx)})
}

// indexEntryRowIdx recovers the heap position from an entry key (the
// trailing fixed-width integer).
func indexEntryRowIdx(key []byte) (int64, bool) {
	if len(key) < 9 {
		return 0, false
	}
	return btree.DecodeIntKeyPrefix(key[len(key)-9:])
}

// openIndexes opens a heap table's catalog indexes and deletes orphan index
// files: half-built ".building" shadows and files whose build crashed
// before its catalog commit (the catalog entry IS the commit point).
func (db *Database) openIndexes(td *tableData) error {
	def := td.def
	expected := map[string]bool{}
	for i := range def.Indexes {
		expected[db.indexPath(def, def.Indexes[i].Name)] = true
	}
	pattern := filepath.Join(db.dir, fmt.Sprintf("t%d_%s.ix_*", def.ID, sanitize(def.Name)))
	matches, err := filepath.Glob(pattern)
	if err != nil {
		return err
	}
	for _, m := range matches {
		if !expected[m] {
			if err := fault.Remove(db.inj, m); err != nil {
				return err
			}
		}
	}
	for i := range def.Indexes {
		ix := &def.Indexes[i]
		path := db.indexPath(def, ix.Name)
		tree, err := btree.OpenFault(path, db.pool, db.inj)
		if err != nil {
			return err
		}
		td.indexes = append(td.indexes, &indexData{name: ix.Name, cols: ix.Columns, tree: tree, path: path})
	}
	return nil
}

// resolveIndexCols maps index column names to positions, refusing what the
// entry encoding cannot order correctly.
func resolveIndexCols(def *catalog.Table, names []string) ([]int, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("core: CREATE INDEX requires at least one column")
	}
	cols := make([]int, 0, len(names))
	for _, n := range names {
		idx := def.ColumnIndex(n)
		if idx < 0 {
			return nil, fmt.Errorf("core: table %s has no column %q", def.Name, n)
		}
		if def.Columns[idx].Type.Name == catalog.TypeSequence {
			return nil, fmt.Errorf("core: SEQUENCE columns cannot be indexed (packed storage order differs from value order)")
		}
		for _, prev := range cols {
			if prev == idx {
				return nil, fmt.Errorf("core: duplicate index column %q", n)
			}
		}
		cols = append(cols, idx)
	}
	return cols, nil
}

// ddlPayload is the WAL body of a RecDDL record.
type ddlPayload struct {
	Op    string `json:"op"`
	Table string `json:"table"`
	Index string `json:"index,omitempty"`
}

// indexEntryIterator streams one page partition's index entries (as
// single-column byte rows) for the parallel sort feeding a bulk load. Rows
// at or past the cut belong to the delta merged in under the exclusive
// lock.
type indexEntryIterator struct {
	it   *storage.HeapVersionIterator
	cols []int
	cut  int64
}

func (e *indexEntryIterator) Next() (sqltypes.Row, bool, error) {
	for {
		row, idx, ok, err := e.it.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if idx >= e.cut {
			continue
		}
		key, err := indexEntryKey(e.cols, row, idx)
		if err != nil {
			return nil, false, err
		}
		return sqltypes.Row{sqltypes.NewBytes(key)}, true, nil
	}
}

func (e *indexEntryIterator) Close() error { return e.it.Close() }

// runCreateIndex executes CREATE INDEX in two phases. Phase 1, under the
// SHARED structure lock, partitions the heap's sealed pages and runs one
// external sort per partition over the encoded entries — concurrent
// queries and writers keep flowing while the bulk of the work happens.
// Phase 2, under the EXCLUSIVE lock, sorts the small delta of rows that
// arrived during phase 1, merges everything into a bottom-up bulk load of
// a ".building" shadow file, logs durable intent to the WAL, renames the
// file into place, and commits by adding the index to the catalog. A crash
// at any point leaves either no index (orphan files are deleted at open)
// or a complete one (recovery rebuilds it if WAL replay shifts heap
// positions).
func (db *Database) runCreateIndex(s *Session, ci *sqlparse.CreateIndex) (*Result, error) {
	if err := s.refuseDDLInTxn(); err != nil {
		return nil, err
	}

	// ---- Phase 1: validate and build sorted entry runs under the shared lock.
	db.mu.RLock()
	td, err := db.table(ci.Table)
	if err != nil {
		db.mu.RUnlock()
		return nil, err
	}
	def := td.def
	var cols []int
	switch {
	case td.heap == nil:
		err = fmt.Errorf("core: secondary indexes are supported on heap tables only (%s is clustered)", def.Name)
	case def.IndexByName(ci.Name) != nil:
		err = fmt.Errorf("core: index %s already exists on %s", ci.Name, def.Name)
	default:
		cols, err = resolveIndexCols(def, ci.Cols)
	}
	if err != nil {
		db.mu.RUnlock()
		return nil, err
	}
	n0 := td.heap.RowCount()
	gen := td.compactGen
	sealed := td.heap.SealedPages()
	parts := int64(db.dop)
	if parts < 1 {
		parts = 1
	}
	if parts > sealed {
		parts = sealed
	}
	if parts < 1 {
		parts = 1
	}
	budget := db.sortBudget
	if budget > 0 {
		budget /= parts
		if budget < 1<<20 {
			budget = 1 << 20
		}
	}
	sorts := make([]*exec.Sort, parts)
	errs := make([]error, parts)
	var wg sync.WaitGroup
	for i := int64(0); i < parts; i++ {
		lo := sealed * i / parts
		hi := sealed * (i + 1) / parts
		includeTail := i == parts-1
		src := &exec.Source{
			Label: fmt.Sprintf("%s index entries [%d,%d)", def.Name, lo, hi),
			Factory: func(*exec.Context) (exec.RowIterator, error) {
				return &indexEntryIterator{
					it:   td.heap.NewVersionIterator(lo, hi, includeTail),
					cols: cols,
					cut:  n0,
				}, nil
			},
		}
		sorts[i] = &exec.Sort{
			Keys:         []exec.SortKey{{Expr: &expr.Col{Idx: 0}}},
			Child:        src,
			MemoryBudget: budget,
			Spill:        db.SpillStore(),
		}
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			// Sort.Open drains the partition scan completely, spilling runs
			// past the budget; phase 2 only streams the merge.
			errs[i] = sorts[i].Open(&exec.Context{DOP: 1, Stats: &db.execStats})
		}(i)
	}
	wg.Wait()
	db.mu.RUnlock()
	closeSorts := func() {
		for i, so := range sorts {
			if errs[i] == nil {
				so.Close()
			}
		}
	}
	for _, e := range errs {
		if e != nil {
			closeSorts()
			return nil, e
		}
	}

	// ---- Phase 2: catch up, bulk load and commit under the exclusive lock.
	db.mu.Lock()
	defer db.mu.Unlock()
	defer closeSorts()
	if err := db.healthErr(); err != nil {
		return nil, err
	}
	if db.tm.explicitOpen() {
		return nil, fmt.Errorf("core: CREATE INDEX cannot run while a transaction is open")
	}
	// Re-validate: the table set and catalog may have changed between the
	// two lock phases.
	td2, err := db.table(ci.Table)
	if err != nil {
		return nil, err
	}
	if td2 != td || td.heap == nil {
		return nil, fmt.Errorf("core: table %s changed during CREATE INDEX", ci.Table)
	}
	if def.IndexByName(ci.Name) != nil {
		return nil, fmt.Errorf("core: index %s already exists on %s", ci.Name, def.Name)
	}
	if td.compactGen != gen {
		// A checkpoint compaction moved rows while the lock was released;
		// the phase-1 positions are stale. Rare enough to just retry.
		return nil, fmt.Errorf("core: heap %s was compacted during CREATE INDEX; retry", def.Name)
	}
	// Delta: rows appended while phase 1 ran. Sorted in memory — the window
	// is one statement's worth of concurrent inserts.
	m := td.heap.RowCount()
	cache := storage.NewHeapFetchCache()
	delta := make([][]byte, 0, m-n0)
	for idx := n0; idx < m; idx++ {
		row, err := td.heap.FetchRowCached(idx, cache)
		if err != nil {
			return nil, err
		}
		key, err := indexEntryKey(cols, row, idx)
		if err != nil {
			return nil, err
		}
		delta = append(delta, key)
	}
	sort.Slice(delta, func(i, j int) bool { return bytes.Compare(delta[i], delta[j]) < 0 })

	// Durable intent BEFORE the file exists: if replay later compacts
	// aborted rows out of this table, the baked positions are stale and
	// recovery must rebuild — the RecDDL record is how it knows.
	data, err := json.Marshal(ddlPayload{Op: "create_index", Table: def.Name, Index: ci.Name})
	if err != nil {
		return nil, err
	}
	if err := db.wal.Append(wal.Record{Type: wal.RecDDL, Table: def.ID, Data: data}); err != nil {
		return nil, err
	}
	if err := db.wal.Flush(); err != nil {
		return nil, err
	}

	path := db.indexPath(def, ci.Name)
	building := path + ".building"
	_ = fault.Remove(db.inj, building)
	heads := make([][]byte, len(sorts))
	for i, so := range sorts {
		row, ok, err := so.Next()
		if err != nil {
			return nil, err
		}
		if ok {
			heads[i] = append([]byte(nil), row[0].B...)
		}
	}
	di := 0
	next := func() ([]byte, []byte, bool, error) {
		best := -1
		for i, h := range heads {
			if h != nil && (best < 0 || bytes.Compare(h, heads[best]) < 0) {
				best = i
			}
		}
		if best >= 0 && (di >= len(delta) || bytes.Compare(heads[best], delta[di]) < 0) {
			key := heads[best]
			row, ok, err := sorts[best].Next()
			if err != nil {
				return nil, nil, false, err
			}
			if ok {
				heads[best] = append([]byte(nil), row[0].B...)
			} else {
				heads[best] = nil
			}
			return key, nil, true, nil
		}
		if di < len(delta) {
			key := delta[di]
			di++
			return key, nil, true, nil
		}
		return nil, nil, false, nil
	}
	tree, err := btree.BulkLoadFault(building, db.pool, db.inj, next)
	if err != nil {
		_ = fault.Remove(db.inj, building)
		return nil, err
	}
	// Close before the rename: the tree's shadow checkpoints write through
	// its opening path, which is about to stop existing.
	if err := tree.Close(); err != nil {
		_ = fault.Remove(db.inj, building)
		return nil, err
	}
	if err := fault.Rename(db.inj, building, path); err != nil {
		_ = fault.Remove(db.inj, building)
		return nil, err
	}
	// The commit point: once the catalog names the index, every later open
	// keeps the file; before, it is an orphan deleted at open.
	if err := db.cat.AddIndex(def.Name, catalog.Index{Name: ci.Name, Columns: cols}); err != nil {
		_ = fault.Remove(db.inj, path)
		return nil, err
	}
	tree, err = btree.OpenFault(path, db.pool, db.inj)
	if err != nil {
		db.poison(fmt.Errorf("core: committed index %s is unopenable: %w", ci.Name, err))
		return nil, err
	}
	td.indexes = append(td.indexes, &indexData{name: ci.Name, cols: cols, tree: tree, path: path})
	// Checkpoint to close the recovery window (truncates the RecDDL away);
	// a failure here leaves the index committed and recovery-correct.
	if err := db.checkpointLocked(); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// runDropIndex executes DROP INDEX name ON table. Callers hold db.mu
// exclusively.
func (db *Database) runDropIndex(di *sqlparse.DropIndex) (*Result, error) {
	td, err := db.table(di.Table)
	if err != nil {
		return nil, err
	}
	if td.def.IndexByName(di.Name) == nil {
		return nil, fmt.Errorf("core: no index %q on %s", di.Name, di.Table)
	}
	// Catalog first — the commit point. The reverse order could leave a
	// catalog entry whose file is gone, which would silently open as an
	// empty (entry-less) index.
	if err := db.cat.DropIndex(td.def.Name, di.Name); err != nil {
		return nil, err
	}
	for i, ix := range td.indexes {
		if strings.EqualFold(ix.name, di.Name) {
			_ = ix.tree.Close()
			td.indexes = append(td.indexes[:i], td.indexes[i+1:]...)
			if err := fault.Remove(db.inj, ix.path); err != nil {
				return nil, err
			}
			break
		}
	}
	return &Result{}, nil
}

// rebuildIndexLocked rebuilds one index from the heap's current physical
// contents with the shadow protocol (bulk to ".building", rename, reopen).
// Called under the exclusive structure lock (checkpoint compaction) or
// single-threaded recovery.
func (db *Database) rebuildIndexLocked(td *tableData, ix *indexData) error {
	var entries [][]byte
	it := td.heap.NewVersionIterator(0, 0, true)
	for {
		row, idx, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		key, err := indexEntryKey(ix.cols, row, idx)
		if err != nil {
			return err
		}
		entries = append(entries, key)
	}
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i], entries[j]) < 0 })
	if ix.tree != nil {
		if err := ix.tree.Close(); err != nil {
			return err
		}
		ix.tree = nil
	}
	building := ix.path + ".building"
	_ = fault.Remove(db.inj, building)
	pos := 0
	tree, err := btree.BulkLoadFault(building, db.pool, db.inj, func() ([]byte, []byte, bool, error) {
		if pos >= len(entries) {
			return nil, nil, false, nil
		}
		k := entries[pos]
		pos++
		return k, nil, true, nil
	})
	if err != nil {
		_ = fault.Remove(db.inj, building)
		return err
	}
	if err := tree.Close(); err != nil {
		return err
	}
	// A crash between these two steps leaves the file missing; recovery's
	// entry-count check catches that and rebuilds again.
	if err := fault.Remove(db.inj, ix.path); err != nil {
		return err
	}
	if err := fault.Rename(db.inj, building, ix.path); err != nil {
		return err
	}
	t2, err := btree.OpenFault(ix.path, db.pool, db.inj)
	if err != nil {
		return err
	}
	ix.tree = t2
	return nil
}

// rowIdxVisible reports whether a heap position is visible under the
// rendered ranges. Unlike heap scans, index order does not visit positions
// monotonically, so each lookup is a binary search.
func rowIdxVisible(ranges []rowRange, idx int64) bool {
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].end > idx })
	return i < len(ranges) && idx >= ranges[i].start
}

// indexScanBounds encodes value bounds on the index's first column as
// entry-key bounds for btree.Seek (end-exclusive). Entry keys extend the
// value encoding with more columns and the position suffix, whose first
// byte is always a type tag < 0xFF — so enc(v)‖0xFF sits after every
// v-entry and before any larger value's entries.
func indexScanBounds(lo, hi *sqltypes.Value, loInc, hiInc bool) (start, end []byte, err error) {
	if lo == nil {
		// Past every NULL entry: comparison predicates never match NULL.
		start = []byte{0x01}
	} else {
		start, err = btree.AppendKey(nil, sqltypes.Row{*lo})
		if err != nil {
			return nil, nil, err
		}
		if !loInc {
			start = append(start, 0xFF)
		}
	}
	if hi != nil {
		end, err = btree.AppendKey(nil, sqltypes.Row{*hi})
		if err != nil {
			return nil, nil, err
		}
		if hiInc {
			end = append(end, 0xFF)
		}
	}
	return start, end, nil
}

// indexScanIterator walks index entries in key order, filters each heap
// position against the scan's snapshot, and fetches the row through the
// buffer pool (a last-page cache makes runs over clustered values decode
// each page once).
type indexScanIterator struct {
	it     *btree.Iterator
	td     *tableData
	ranges []rowRange
	cache  *storage.HeapFetchCache
	locked bool
}

func (x *indexScanIterator) Next() (sqltypes.Row, bool, error) {
	for {
		if !x.it.Next() {
			return nil, false, x.it.Err()
		}
		idx, ok := indexEntryRowIdx(x.it.Key())
		if !ok {
			return nil, false, fmt.Errorf("core: malformed index entry in %s", x.td.def.Name)
		}
		if !rowIdxVisible(x.ranges, idx) {
			continue
		}
		row, err := x.td.heap.FetchRowCached(idx, x.cache)
		if err != nil {
			return nil, false, err
		}
		return row, true, nil
	}
}

func (x *indexScanIterator) Close() error {
	x.it.Close()
	if x.locked {
		x.td.writeMu.RUnlock()
		x.locked = false
	}
	return nil
}

// IndexScan returns a serial operator scanning the named secondary index
// over [lo, hi] bounds on its first column (nil = open; loInc/hiInc select
// inclusive bounds), emitting heap rows in index-key order. The scan holds
// the table's write latch shared for its duration, exactly like clustered
// scans — the btree iterator walks pages unlatched.
func (db *Database) IndexScan(t *catalog.Table, idxName string, lo, hi *sqltypes.Value, loInc, hiInc bool) (exec.Operator, error) {
	td := db.tables[t.ID]
	if td == nil || td.heap == nil {
		return nil, fmt.Errorf("core: %s has no heap storage for an index scan", t.Name)
	}
	var ix *indexData
	for _, cand := range td.indexes {
		if strings.EqualFold(cand.name, idxName) {
			ix = cand
			break
		}
	}
	if ix == nil {
		return nil, fmt.Errorf("core: no index %q on %s", idxName, t.Name)
	}
	startKey, endKey, err := indexScanBounds(lo, hi, loInc, hiInc)
	if err != nil {
		return nil, err
	}
	def := td.def
	return &exec.Source{
		Label: fmt.Sprintf("%s index %s", t.Name, idxName),
		Factory: func(ctx *exec.Context) (exec.RowIterator, error) {
			var snap *Snapshot
			if ctx != nil {
				snap, _ = ctx.Snapshot.(*Snapshot)
			}
			td.writeMu.RLock()
			it, err := ix.tree.Seek(startKey, endKey)
			if err != nil {
				td.writeMu.RUnlock()
				return nil, err
			}
			return db.wrapIterator(def, &indexScanIterator{
				it:     it,
				td:     td,
				ranges: td.versions.visibleRanges(snap),
				cache:  storage.NewHeapFetchCache().SetPoolTally(poolTallyFrom(ctx)),
				locked: true,
			}), nil
		},
	}, nil
}
