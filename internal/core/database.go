// Package core is the embedded relational engine — the system under study
// in the paper, reproduced from scratch: a catalog-driven storage layer
// (heaps and clustered B+-trees with ROW/PAGE compression), a FileStream
// blob store with dual SQL/file access, write-ahead logging with
// idempotent redo recovery, transactions with rollback, a SQL front end
// with a parallelizing planner, and the CLR-style extensibility surface
// (scalar UDFs, pull-model TVFs, mergeable UDAs, the SEQUENCE UDT).
package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/blob"
	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/sqltypes"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Options configures Open.
type Options struct {
	// BufferPoolPages caps the page cache (default 32768 pages = 256 MB).
	BufferPoolPages int
	// BufferPoolShards sets the pool's lock-shard count (rounded to a
	// power of two; default 0 auto-sizes from GOMAXPROCS). More shards
	// reduce latch contention for parallel scans.
	BufferPoolShards int
	// DOP is the degree of parallelism for queries (default NumCPU).
	DOP int
	// ParallelThreshold is the minimum estimated row count before the
	// planner considers a parallel scan (default: the planner's, a few
	// pages of rows).
	ParallelThreshold int64
	// JoinMemoryBudget caps the bytes of build-side rows a hash join may
	// hold in memory before it spills whole partitions to temp files in
	// <dir>/tmp (default 64 MB; negative disables spilling so joins of
	// any size stay in memory). A join whose build side exceeds the
	// budget still returns exactly the in-memory result — it pages
	// through disk instead of growing the heap.
	JoinMemoryBudget int64
	// JoinPartitions is the hash fan-out of partitioned parallel joins
	// (default 32). More partitions lower the per-partition memory need
	// and sharpen spill granularity at the cost of smaller hash tables.
	JoinPartitions int
	// SortMemoryBudget caps the bytes a sort (ORDER BY, ROW_NUMBER) may
	// buffer before spilling stably-sorted runs to temp files in
	// <dir>/tmp and k-way merging them on output (default 64 MB;
	// negative disables spilling so sorts of any size stay in memory).
	// Parallel sorts divide the budget across their partition sorts.
	SortMemoryBudget int64
	// AggMemoryBudget caps the bytes of resident group state a hash
	// aggregate (GROUP BY) may hold before freezing hash partitions and
	// spilling their overflow rows to temp files, re-aggregating per
	// partition on output (default 64 MB; negative disables spilling).
	// Parallel plans divide it across their partial aggregates.
	AggMemoryBudget int64
	// DisableJoinBloom turns off the probe-side Bloom filters partitioned
	// joins build over their build keys (used by A/B experiments; the
	// planner already auto-disables a filter when statistics say nearly
	// every probe row matches).
	DisableJoinBloom bool
}

// Database is an open engine instance rooted at a directory.
type Database struct {
	dir   string
	cat   *catalog.Catalog
	pool  *storage.BufferPool
	wal   *wal.WAL
	blobs *blob.Store

	mu     sync.RWMutex // writers exclusive; queries shared
	tables map[uint32]*tableData

	scalars *expr.Registry
	aggs    map[string]exec.AggFactory
	tvfs    map[string]plan.TVF

	txn        *Txn // open explicit transaction, nil otherwise
	txnSeq     uint64
	dop        int
	threshold  int64 // planner ParallelThreshold override, 0 = default
	joinBudget int64 // join memory budget (0 = unlimited)
	joinParts  int   // join hash fan-out
	sortBudget int64 // sort memory budget (0 = unlimited)
	aggBudget  int64 // aggregate memory budget (0 = unlimited)
	noBloom    bool  // disable join Bloom filters
	planner    *plan.Planner
	spill      *storage.SpillManager
	tstats     *stats.Store
	execStats  exec.ExecStats
}

// tableData is the open storage behind one catalog table.
type tableData struct {
	def      *catalog.Table
	heap     *storage.Heap // heap-organized tables
	tree     *btree.BTree  // clustered tables
	walCodec storage.RowCodec
	// insertSeq numbers inserts for WAL row indexes.
	insertSeq int64
	// modCount counts modifications since open (seeded from the durable
	// row count, so it is comparable across restarts); ANALYZE records it
	// and the planner treats stats as stale once the live counter drifts
	// too far from the recorded one.
	modCount atomic.Int64
}

// Open opens (creating if needed) a database directory and runs crash
// recovery.
func Open(dir string, opts Options) (*Database, error) {
	if opts.BufferPoolPages <= 0 {
		opts.BufferPoolPages = 32768
	}
	if opts.DOP <= 0 {
		opts.DOP = runtime.NumCPU()
	}
	if opts.JoinMemoryBudget == 0 {
		opts.JoinMemoryBudget = plan.DefaultJoinMemoryBudget
	} else if opts.JoinMemoryBudget < 0 {
		opts.JoinMemoryBudget = 0 // unlimited
	}
	if opts.JoinPartitions <= 0 {
		opts.JoinPartitions = plan.DefaultJoinPartitions
	}
	if opts.SortMemoryBudget == 0 {
		opts.SortMemoryBudget = plan.DefaultSortMemoryBudget
	} else if opts.SortMemoryBudget < 0 {
		opts.SortMemoryBudget = 0 // unlimited
	}
	if opts.AggMemoryBudget == 0 {
		opts.AggMemoryBudget = plan.DefaultAggMemoryBudget
	} else if opts.AggMemoryBudget < 0 {
		opts.AggMemoryBudget = 0 // unlimited
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cat, err := catalog.Open(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return nil, err
	}
	blobs, err := blob.OpenStore(filepath.Join(dir, "filestream"))
	if err != nil {
		return nil, err
	}
	w, err := wal.Open(filepath.Join(dir, "db.wal"))
	if err != nil {
		return nil, err
	}
	tstats, err := stats.OpenStore(filepath.Join(dir, "stats.json"))
	if err != nil {
		return nil, err
	}
	db := &Database{
		dir:        dir,
		cat:        cat,
		pool:       storage.NewBufferPoolSharded(opts.BufferPoolPages, opts.BufferPoolShards),
		wal:        w,
		blobs:      blobs,
		tables:     map[uint32]*tableData{},
		scalars:    expr.NewRegistry(),
		aggs:       map[string]exec.AggFactory{},
		tvfs:       map[string]plan.TVF{},
		dop:        opts.DOP,
		threshold:  opts.ParallelThreshold,
		joinBudget: opts.JoinMemoryBudget,
		joinParts:  opts.JoinPartitions,
		sortBudget: opts.SortMemoryBudget,
		aggBudget:  opts.AggMemoryBudget,
		noBloom:    opts.DisableJoinBloom,
		tstats:     tstats,
	}
	db.spill = storage.NewSpillManager(filepath.Join(dir, "tmp"), db.pool)
	db.planner = db.newPlanner(db.dop)
	db.registerEngineFunctions()
	for _, name := range cat.List() {
		if err := db.openTableStorage(cat.Get(name)); err != nil {
			db.Close()
			return nil, err
		}
	}
	if err := db.recover(); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// Dir returns the database directory.
func (db *Database) Dir() string { return db.dir }

// Blobs exposes the FileStream store (dual access for external tools).
func (db *Database) Blobs() *blob.Store { return db.blobs }

// Catalog exposes table metadata.
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// DOP returns the configured degree of parallelism.
func (db *Database) DOP() int { return db.dop }

// PoolStats snapshots the buffer pool counters; safe to call during
// concurrent queries (the counters are atomics). The benchmarks report
// per-query hit rates from deltas of this.
func (db *Database) PoolStats() storage.PoolStats { return db.pool.Stats() }

// newPlanner builds a planner honoring the database's threshold and join
// overrides.
func (db *Database) newPlanner(dop int) *plan.Planner {
	pl := plan.NewPlanner(db, dop)
	if db.threshold > 0 {
		pl.ParallelThreshold = db.threshold
	}
	pl.JoinMemoryBudget = db.joinBudget
	pl.JoinPartitions = db.joinParts
	pl.SortMemoryBudget = db.sortBudget
	pl.AggMemoryBudget = db.aggBudget
	pl.EnableJoinBloom = !db.noBloom
	return pl
}

// ExecStatsSnapshot is the engine's unified monitoring block: buffer
// pool counters plus every operator family's spill activity (join
// partitions, sort runs, aggregate partitions), captured at one instant.
type ExecStatsSnapshot struct {
	Pool storage.PoolStats
	Join exec.JoinStatsSnapshot
	Sort exec.SortStatsSnapshot
	Agg  exec.AggStatsSnapshot
}

// Sub returns the counter deltas since an earlier snapshot.
func (s ExecStatsSnapshot) Sub(earlier ExecStatsSnapshot) ExecStatsSnapshot {
	return ExecStatsSnapshot{
		Pool: s.Pool.Sub(earlier.Pool),
		Join: s.Join.Sub(earlier.Join),
		Sort: s.Sort.Sub(earlier.Sort),
		Agg:  s.Agg.Sub(earlier.Agg),
	}
}

// ExecStats snapshots all operator counters and the buffer pool; safe to
// call during concurrent queries (every counter is an atomic). Benches
// and tests observe join, sort and aggregate spill behavior through this
// single surface.
func (db *Database) ExecStats() ExecStatsSnapshot {
	op := db.execStats.Snapshot()
	return ExecStatsSnapshot{Pool: db.pool.Stats(), Join: op.Join, Sort: op.Sort, Agg: op.Agg}
}

// SetDOP overrides the degree of parallelism (used by the scaling
// experiments).
func (db *Database) SetDOP(dop int) {
	if dop < 1 {
		dop = 1
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.dop = dop
	db.planner = db.newPlanner(dop)
}

func (db *Database) tablePath(t *catalog.Table) string {
	ext := "heap"
	if t.Clustered {
		ext = "btree"
	}
	return filepath.Join(db.dir, fmt.Sprintf("t%d_%s.%s", t.ID, sanitize(t.Name), ext))
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(s) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func (db *Database) openTableStorage(def *catalog.Table) error {
	td := &tableData{
		def:      def,
		walCodec: storage.RowCodec{Kinds: def.StorageKinds(), Mode: storage.CompressRow},
	}
	if def.Clustered {
		tree, err := btree.Open(db.tablePath(def), db.pool)
		if err != nil {
			return err
		}
		td.tree = tree
		td.insertSeq = tree.Count()
	} else {
		h, err := storage.OpenHeapWidths(db.tablePath(def), def.StorageKinds(), def.StorageWidths(), def.Compression, db.pool)
		if err != nil {
			return err
		}
		td.heap = h
		td.insertSeq = h.RowCount()
	}
	td.modCount.Store(td.insertSeq)
	db.tables[def.ID] = td
	return nil
}

// table resolves open storage by name.
func (db *Database) table(name string) (*tableData, error) {
	def := db.cat.Get(name)
	if def == nil {
		return nil, fmt.Errorf("core: unknown table %q", name)
	}
	td := db.tables[def.ID]
	if td == nil {
		return nil, fmt.Errorf("core: table %q has no open storage", name)
	}
	return td, nil
}

// rowCount returns the current row count of a table.
func (td *tableData) rowCount() int64 {
	if td.heap != nil {
		return td.heap.RowCount()
	}
	return td.tree.Count()
}

// Close releases all resources. It does NOT checkpoint; callers wanting a
// clean shutdown should call Checkpoint first (recovery replays the WAL
// otherwise).
func (db *Database) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var firstErr error
	for _, td := range db.tables {
		var err error
		if td.heap != nil {
			err = td.heap.Close()
		} else if td.tree != nil {
			err = td.tree.Close()
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := db.wal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Checkpoint makes all table data durable and truncates the WAL. It is
// refused while a transaction is open (heap rollback could not undo past
// a checkpoint).
func (db *Database) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

func (db *Database) checkpointLocked() error {
	if db.txn != nil {
		return fmt.Errorf("core: CHECKPOINT is not allowed inside a transaction")
	}
	// WAL first: every logged effect must be durable before data files
	// advance past it.
	if err := db.wal.Flush(); err != nil {
		return err
	}
	for _, td := range db.tables {
		var err error
		if td.heap != nil {
			err = td.heap.Checkpoint()
		} else {
			err = td.tree.Checkpoint()
		}
		if err != nil {
			return err
		}
	}
	return db.wal.Truncate()
}

// recover replays the WAL: committed effects are redone (idempotently),
// effects of uncommitted or aborted transactions are undone where storage
// could already contain them (clustered upserts, blobs).
func (db *Database) recover() error {
	committed := map[uint64]bool{}
	aborted := map[uint64]bool{}
	if err := db.wal.Replay(func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecCommit:
			committed[rec.Txn] = true
		case wal.RecAbort:
			aborted[rec.Txn] = true
		}
		return nil
	}); err != nil {
		return err
	}
	statsReplayed := false
	err := db.wal.Replay(func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecInsert:
			td := db.tables[rec.Table]
			if td == nil {
				return nil // table was dropped
			}
			if committed[rec.Txn] {
				return db.redoInsert(td, rec)
			}
			return db.undoInsert(td, rec)
		case wal.RecBlobCreate:
			if !committed[rec.Txn] {
				return db.blobs.Delete(string(rec.Data))
			}
		case wal.RecBlobDelete:
			if committed[rec.Txn] {
				return db.blobs.Delete(string(rec.Data))
			}
		case wal.RecStats:
			// Re-apply ANALYZE images whose stats-file write was lost.
			if committed[rec.Txn] && db.cat.ByID(rec.Table) != nil {
				var ts stats.TableStats
				if err := json.Unmarshal(rec.Data, &ts); err != nil {
					return fmt.Errorf("core: recovery stats decode: %w", err)
				}
				db.tstats.Apply(&ts)
				statsReplayed = true
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if statsReplayed {
		if err := db.tstats.Save(); err != nil {
			return err
		}
	}
	// Replay may have re-applied inserts; re-seed the modification
	// counters so they stay comparable with the ModCount values ANALYZE
	// recorded (for insert-only tables both track the row count).
	for _, td := range db.tables {
		td.modCount.Store(td.rowCount())
	}
	// Converge: make everything durable and empty the log.
	return db.checkpointLocked()
}

func (db *Database) redoInsert(td *tableData, rec wal.Record) error {
	row, _, err := td.walCodec.Decode(rec.Data, true)
	if err != nil {
		return fmt.Errorf("core: recovery decode for %s: %w", td.def.Name, err)
	}
	if rec.RowIndex+1 > td.insertSeq {
		td.insertSeq = rec.RowIndex + 1
	}
	if td.heap != nil {
		if rec.RowIndex < td.heap.RowCount() {
			return nil // already durable
		}
		return td.heap.Append(row)
	}
	key, err := td.pkKey(row)
	if err != nil {
		return err
	}
	val, err := td.walCodec.EncodeAppend(nil, row)
	if err != nil {
		return err
	}
	_, err = td.tree.Insert(key, val)
	return err
}

func (db *Database) undoInsert(td *tableData, rec wal.Record) error {
	if td.tree == nil {
		// Heap rows of uncommitted transactions never reach disk (heaps
		// only persist at transaction-boundary checkpoints).
		return nil
	}
	row, _, err := td.walCodec.Decode(rec.Data, true)
	if err != nil {
		return err
	}
	key, err := td.pkKey(row)
	if err != nil {
		return err
	}
	_, err = td.tree.Delete(key)
	return err
}

// pkKey encodes the primary-key values of a storage row.
func (td *tableData) pkKey(storageRow sqltypes.Row) ([]byte, error) {
	pk := make(sqltypes.Row, len(td.def.PrimaryKey))
	for i, idx := range td.def.PrimaryKey {
		pk[i] = storageRow[idx]
	}
	return btree.AppendKey(nil, pk)
}
