// Package core is the embedded relational engine — the system under study
// in the paper, reproduced from scratch: a catalog-driven storage layer
// (heaps and clustered B+-trees with ROW/PAGE compression), a FileStream
// blob store with dual SQL/file access, write-ahead logging with
// idempotent redo recovery, transactions with rollback, a SQL front end
// with a parallelizing planner, and the CLR-style extensibility surface
// (scalar UDFs, pull-model TVFs, mergeable UDAs, the SEQUENCE UDT).
package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blob"
	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sqltypes"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Options configures Open.
type Options struct {
	// BufferPoolPages caps the page cache (default 32768 pages = 256 MB).
	BufferPoolPages int
	// BufferPoolShards sets the pool's lock-shard count (rounded to a
	// power of two; default 0 auto-sizes from GOMAXPROCS). More shards
	// reduce latch contention for parallel scans.
	BufferPoolShards int
	// DOP is the degree of parallelism for queries (default NumCPU).
	DOP int
	// ParallelThreshold is the minimum estimated row count before the
	// planner considers a parallel scan (default: the planner's, a few
	// pages of rows).
	ParallelThreshold int64
	// JoinMemoryBudget caps the bytes of build-side rows a hash join may
	// hold in memory before it spills whole partitions to temp files in
	// <dir>/tmp (default 64 MB; negative disables spilling so joins of
	// any size stay in memory). A join whose build side exceeds the
	// budget still returns exactly the in-memory result — it pages
	// through disk instead of growing the heap.
	JoinMemoryBudget int64
	// JoinPartitions is the hash fan-out of partitioned parallel joins
	// (default 32). More partitions lower the per-partition memory need
	// and sharpen spill granularity at the cost of smaller hash tables.
	JoinPartitions int
	// SortMemoryBudget caps the bytes a sort (ORDER BY, ROW_NUMBER) may
	// buffer before spilling stably-sorted runs to temp files in
	// <dir>/tmp and k-way merging them on output (default 64 MB;
	// negative disables spilling so sorts of any size stay in memory).
	// Parallel sorts divide the budget across their partition sorts.
	SortMemoryBudget int64
	// AggMemoryBudget caps the bytes of resident group state a hash
	// aggregate (GROUP BY) may hold before freezing hash partitions and
	// spilling their overflow rows to temp files, re-aggregating per
	// partition on output (default 64 MB; negative disables spilling).
	// Parallel plans divide it across their partial aggregates.
	AggMemoryBudget int64
	// DisableJoinBloom turns off the probe-side Bloom filters partitioned
	// joins build over their build keys (used by A/B experiments; the
	// planner already auto-disables a filter when statistics say nearly
	// every probe row matches).
	DisableJoinBloom bool
	// BatchSize is the target rows per columnar batch for vectorized
	// execution (default vec.DefaultBatchSize; page-backed scans batch
	// one page at a time regardless).
	BatchSize int
	// DisableVectorized forces every plan back to row-at-a-time
	// execution (used by A/B experiments and as an escape hatch).
	DisableVectorized bool
	// FaultInjector routes the database's storage I/O (heap and btree
	// pages, WAL, spill files) through fault.Injector failpoints, and
	// enables simulated power loss: all files buffer through the
	// injector's FS shim and a crash discards unsynced writes. nil (the
	// default) means direct OS I/O. Test/torture use only.
	FaultInjector *fault.Injector
	// DisablePageChecksums writes heap/columnar pages in the legacy
	// (version-0, unchecksummed) format and skips verification — for the
	// checksum-overhead benchmark and format-compatibility tests.
	DisablePageChecksums bool
	// SlowQueryThreshold enables the slow-query log: statements running at
	// or over the threshold keep their full per-operator profile in
	// Database.SlowQueries (0, the default, disables capture; the query
	// history ring records every statement regardless).
	SlowQueryThreshold time.Duration
	// QueryHistorySize sets the query-history ring capacity (default 128).
	QueryHistorySize int
	// DisableInstrumentation turns off the always-on per-operator counters
	// SELECTs accumulate (row counts, spill volume, Bloom and buffer-pool
	// activity). EXPLAIN ANALYZE instruments its statement regardless. The
	// obs overhead benchmark uses this for its A/B baseline.
	DisableInstrumentation bool
}

// Database is an open engine instance rooted at a directory.
type Database struct {
	dir   string
	cat   *catalog.Catalog
	pool  *storage.BufferPool
	wal   *wal.WAL
	blobs *blob.Store

	// mu is the STRUCTURE lock: DDL, checkpoint and Close take it
	// exclusively; every other statement — SELECT, INSERT, ANALYZE —
	// holds it shared. Row-level write synchronization lives in the
	// per-table write latches; read visibility comes from MVCC
	// snapshots, so readers never wait for writers.
	mu     sync.RWMutex
	tables map[uint32]*tableData

	scalars *expr.Registry
	aggs    map[string]exec.AggFactory
	tvfs    map[string]plan.TVF

	tm          *txnManager
	defaultSess *Session // serves the Database-level statement API

	// fatalErr poisons the database after a failed mid-transaction undo
	// or an ambiguous commit: storage no longer matches any consistent
	// image, so every statement is refused until the directory is
	// reopened and WAL recovery rebuilds a clean state.
	fatalMu  sync.Mutex
	fatalErr error

	vacuumStop chan struct{}
	vacuumDone chan struct{}

	dop        int
	threshold  int64 // planner ParallelThreshold override, 0 = default
	joinBudget int64 // join memory budget (0 = unlimited)
	joinParts  int   // join hash fan-out
	sortBudget int64 // sort memory budget (0 = unlimited)
	aggBudget  int64 // aggregate memory budget (0 = unlimited)
	noBloom    bool  // disable join Bloom filters
	batchSize  int   // vectorized batch size (0 = vec default)
	noVec      bool  // disable vectorized execution
	planner    *plan.Planner
	spill      *storage.SpillManager
	tstats     *stats.Store
	execStats  exec.ExecStats
	scanStats  storage.VecScanStats

	inj         *fault.Injector            // fault-injection registry (nil in production)
	integ       *storage.IntegrityCounters // shared page-checksum counters
	noChecksums bool

	// Observability surface: the named gauge registry behind Metrics(),
	// the query history + slow-query log, engine-event counters, and the
	// planner's access-path pick counts (one long-lived instance shared
	// across SetDOP planner rebuilds so the counts stay monotonic).
	metrics     *obs.Registry
	qlog        *obs.QueryLog
	checkpoints atomic.Int64
	vacuumRuns  atomic.Int64
	pathPicks   plan.PathPickCounters
	noInstr     bool
}

// tableData is the open storage behind one catalog table.
type tableData struct {
	def      *catalog.Table
	heap     *storage.Heap // heap-organized tables
	tree     *btree.BTree  // clustered tables
	walCodec storage.RowCodec
	// writeMu is the table's write latch: writers hold it exclusively per
	// row insert (and rollback key deletes); clustered-table scans hold
	// it shared for their duration because the btree iterator walks pages
	// unlatched. Heap scans never take it — MVCC snapshots make heap
	// reads safe against concurrent appends.
	writeMu sync.RWMutex
	// versions is the table's MVCC state: which rows belong to which
	// transaction, and at which commit sequence they became visible.
	versions *tableVersions
	// insertSeq numbers inserts for WAL row indexes; guarded by writeMu.
	insertSeq int64
	// modCount counts modifications since open (seeded from the durable
	// row count, so it is comparable across restarts); ANALYZE records it
	// and the planner treats stats as stale once the live counter drifts
	// too far from the recorded one.
	modCount atomic.Int64
	// indexes are the open secondary indexes (heap tables only).
	indexes []*indexData
	// compactGen counts heap compactions; CREATE INDEX uses it to detect
	// rows moving between its shared and exclusive lock phases. Guarded by
	// db.mu (compaction runs under the exclusive lock).
	compactGen int64
}

// Open opens (creating if needed) a database directory and runs crash
// recovery.
func Open(dir string, opts Options) (*Database, error) {
	if opts.BufferPoolPages <= 0 {
		opts.BufferPoolPages = 32768
	}
	if opts.DOP <= 0 {
		opts.DOP = runtime.NumCPU()
	}
	if opts.JoinMemoryBudget == 0 {
		opts.JoinMemoryBudget = plan.DefaultJoinMemoryBudget
	} else if opts.JoinMemoryBudget < 0 {
		opts.JoinMemoryBudget = 0 // unlimited
	}
	if opts.JoinPartitions <= 0 {
		opts.JoinPartitions = plan.DefaultJoinPartitions
	}
	if opts.SortMemoryBudget == 0 {
		opts.SortMemoryBudget = plan.DefaultSortMemoryBudget
	} else if opts.SortMemoryBudget < 0 {
		opts.SortMemoryBudget = 0 // unlimited
	}
	if opts.AggMemoryBudget == 0 {
		opts.AggMemoryBudget = plan.DefaultAggMemoryBudget
	} else if opts.AggMemoryBudget < 0 {
		opts.AggMemoryBudget = 0 // unlimited
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cat, err := catalog.Open(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return nil, err
	}
	blobs, err := blob.OpenStore(filepath.Join(dir, "filestream"))
	if err != nil {
		return nil, err
	}
	w, err := wal.OpenFault(filepath.Join(dir, "db.wal"), opts.FaultInjector)
	if err != nil {
		return nil, err
	}
	tstats, err := stats.OpenStore(filepath.Join(dir, "stats.json"))
	if err != nil {
		return nil, err
	}
	db := &Database{
		dir:        dir,
		cat:        cat,
		pool:       storage.NewBufferPoolSharded(opts.BufferPoolPages, opts.BufferPoolShards),
		wal:        w,
		blobs:      blobs,
		tables:     map[uint32]*tableData{},
		scalars:    expr.NewRegistry(),
		aggs:       map[string]exec.AggFactory{},
		tvfs:       map[string]plan.TVF{},
		dop:        opts.DOP,
		threshold:  opts.ParallelThreshold,
		joinBudget: opts.JoinMemoryBudget,
		joinParts:  opts.JoinPartitions,
		sortBudget: opts.SortMemoryBudget,
		aggBudget:  opts.AggMemoryBudget,
		noBloom:    opts.DisableJoinBloom,
		batchSize:  opts.BatchSize,
		noVec:      opts.DisableVectorized,
		tstats:     tstats,
		tm:         newTxnManager(),

		inj:         opts.FaultInjector,
		integ:       &storage.IntegrityCounters{},
		noChecksums: opts.DisablePageChecksums,

		noInstr: opts.DisableInstrumentation,
	}
	histSize := opts.QueryHistorySize
	if histSize <= 0 {
		histSize = defaultQueryHistorySize
	}
	db.qlog = obs.NewQueryLog(histSize, defaultSlowLogSize, opts.SlowQueryThreshold)
	db.metrics = obs.NewRegistry()
	db.registerMetrics()
	db.defaultSess = db.NewSession()
	db.spill = storage.NewSpillManagerFault(filepath.Join(dir, "tmp"), db.pool, db.inj)
	db.planner = db.newPlanner(db.dop)
	db.registerEngineFunctions()
	for _, name := range cat.List() {
		if err := db.openTableStorage(cat.Get(name)); err != nil {
			db.Close()
			return nil, err
		}
	}
	if err := db.recover(); err != nil {
		db.Close()
		return nil, err
	}
	db.vacuumStop = make(chan struct{})
	db.vacuumDone = make(chan struct{})
	go func() {
		defer close(db.vacuumDone)
		db.vacuumLoop(db.vacuumStop)
	}()
	return db, nil
}

// poison records the first fatal error; every later statement fails with
// it until the database is reopened (which runs WAL recovery).
func (db *Database) poison(err error) {
	db.fatalMu.Lock()
	if db.fatalErr == nil {
		db.fatalErr = err
	}
	db.fatalMu.Unlock()
}

// healthErr returns the statement-blocking error of a poisoned database.
func (db *Database) healthErr() error {
	db.fatalMu.Lock()
	defer db.fatalMu.Unlock()
	if db.fatalErr != nil {
		return fmt.Errorf("core: database is in a failed state and must be reopened for recovery: %w", db.fatalErr)
	}
	return nil
}

// Health returns the error that poisoned the database, or nil while it is
// healthy.
func (db *Database) Health() error {
	db.fatalMu.Lock()
	defer db.fatalMu.Unlock()
	return db.fatalErr
}

// Dir returns the database directory.
func (db *Database) Dir() string { return db.dir }

// Blobs exposes the FileStream store (dual access for external tools).
func (db *Database) Blobs() *blob.Store { return db.blobs }

// Catalog exposes table metadata.
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// DOP returns the configured degree of parallelism.
func (db *Database) DOP() int { return db.dop }

// PoolStats snapshots the buffer pool counters; safe to call during
// concurrent queries (the counters are atomics). The benchmarks report
// per-query hit rates from deltas of this.
func (db *Database) PoolStats() storage.PoolStats { return db.pool.Stats() }

// WALSyncs returns the number of WAL fsyncs completed so far. With the
// group-commit pipeline concurrently committing sessions share fsyncs, so
// under multi-writer load this grows slower than the commit count.
func (db *Database) WALSyncs() int64 { return db.wal.Syncs() }

// newPlanner builds a planner honoring the database's threshold and join
// overrides.
func (db *Database) newPlanner(dop int) *plan.Planner {
	pl := plan.NewPlanner(db, dop)
	if db.threshold > 0 {
		pl.ParallelThreshold = db.threshold
	}
	pl.JoinMemoryBudget = db.joinBudget
	pl.JoinPartitions = db.joinParts
	pl.SortMemoryBudget = db.sortBudget
	pl.AggMemoryBudget = db.aggBudget
	pl.EnableJoinBloom = !db.noBloom
	pl.PathPicks = &db.pathPicks
	return pl
}

// ExecStatsSnapshot is the engine's unified monitoring block: buffer
// pool counters plus every operator family's spill activity (join
// partitions, sort runs, aggregate partitions), captured at one instant.
type ExecStatsSnapshot struct {
	Pool      storage.PoolStats
	Join      exec.JoinStatsSnapshot
	Sort      exec.SortStatsSnapshot
	Agg       exec.AggStatsSnapshot
	Scan      storage.VecScanSnapshot
	Integrity storage.IntegrityStats
}

// Sub returns the counter deltas since an earlier snapshot.
func (s ExecStatsSnapshot) Sub(earlier ExecStatsSnapshot) ExecStatsSnapshot {
	return ExecStatsSnapshot{
		Pool:      s.Pool.Sub(earlier.Pool),
		Join:      s.Join.Sub(earlier.Join),
		Sort:      s.Sort.Sub(earlier.Sort),
		Agg:       s.Agg.Sub(earlier.Agg),
		Scan:      s.Scan.Sub(earlier.Scan),
		Integrity: s.Integrity.Sub(earlier.Integrity),
	}
}

// ExecStats snapshots all operator counters and the buffer pool; safe to
// call during concurrent queries (every counter is an atomic). Benches
// and tests observe join, sort, aggregate spill and vectorized-scan
// decode behavior through this single surface.
func (db *Database) ExecStats() ExecStatsSnapshot {
	op := db.execStats.Snapshot()
	return ExecStatsSnapshot{
		Pool: db.pool.Stats(), Join: op.Join, Sort: op.Sort, Agg: op.Agg,
		Scan: db.scanStats.Snapshot(), Integrity: db.integ.Snapshot(),
	}
}

// TableIntegrity is one table's result from VerifyIntegrity.
type TableIntegrity struct {
	Table string
	// PagesChecked counts sealed data pages whose CRC32C was verified;
	// PagesSkipped counts legacy (pre-checksum) pages, which carry none.
	// Clustered (btree) tables carry no page checksums yet and report all
	// pages as skipped.
	PagesChecked int64
	PagesSkipped int64
	// Failures holds one message per corrupt or unreadable page.
	Failures []string
}

// VerifyIntegrity reads every table's sealed pages from disk and checks
// their checksums, bypassing the buffer pool — the scrub behind the
// `genodb -verify` flag. It reports per-table results; corruption does
// not poison the database (the pages of other tables are independent).
func (db *Database) VerifyIntegrity() ([]TableIntegrity, error) {
	if err := db.healthErr(); err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []TableIntegrity
	for _, name := range db.cat.List() {
		td, err := db.table(name)
		if err != nil {
			return nil, err
		}
		ti := TableIntegrity{Table: name}
		if td.heap != nil {
			checked, skipped, failures := td.heap.VerifyChecksums()
			ti.PagesChecked, ti.PagesSkipped = checked, skipped
			for _, f := range failures {
				ti.Failures = append(ti.Failures, f.Error())
			}
		} else {
			ti.PagesSkipped = td.tree.SizeBytes() / storage.PageSize
		}
		out = append(out, ti)
	}
	return out, nil
}

// SetDOP overrides the degree of parallelism (used by the scaling
// experiments).
func (db *Database) SetDOP(dop int) {
	if dop < 1 {
		dop = 1
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.dop = dop
	db.planner = db.newPlanner(dop)
}

func (db *Database) tablePath(t *catalog.Table) string {
	ext := "heap"
	if t.Clustered {
		ext = "btree"
	}
	return filepath.Join(db.dir, fmt.Sprintf("t%d_%s.%s", t.ID, sanitize(t.Name), ext))
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(s) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func (db *Database) openTableStorage(def *catalog.Table) error {
	td := &tableData{
		def:      def,
		walCodec: storage.RowCodec{Kinds: def.StorageKinds(), Mode: storage.CompressRow},
	}
	if def.Clustered {
		tree, err := btree.OpenFault(db.tablePath(def), db.pool, db.inj)
		if err != nil {
			return err
		}
		td.tree = tree
		td.insertSeq = tree.Count()
	} else {
		h, err := storage.OpenHeapEnv(db.tablePath(def), def.StorageKinds(), def.StorageWidths(), def.Compression, db.pool,
			storage.HeapEnv{Injector: db.inj, Integrity: db.integ, DisableChecksums: db.noChecksums})
		if err != nil {
			return err
		}
		td.heap = h
		td.insertSeq = h.RowCount()
		if err := db.openIndexes(td); err != nil {
			return err
		}
	}
	td.modCount.Store(td.insertSeq)
	td.versions = newTableVersions(td.insertSeq)
	db.tables[def.ID] = td
	return nil
}

// table resolves open storage by name.
func (db *Database) table(name string) (*tableData, error) {
	def := db.cat.Get(name)
	if def == nil {
		return nil, fmt.Errorf("core: unknown table %q", name)
	}
	td := db.tables[def.ID]
	if td == nil {
		return nil, fmt.Errorf("core: table %q has no open storage", name)
	}
	return td, nil
}

// rowCount returns the current physical row count of a table (including
// not-yet-visible and dead rows).
func (td *tableData) rowCount() int64 {
	if td.heap != nil {
		return td.heap.RowCount()
	}
	return td.tree.Count()
}

// visibleRowCount returns the table's cardinality under a snapshot.
func (td *tableData) visibleRowCount(snap *Snapshot) int64 {
	if td.heap != nil {
		var n int64
		for _, r := range td.versions.visibleRanges(snap) {
			n += r.end - r.start
		}
		return n
	}
	return td.tree.Count() - td.versions.invisibleKeys(snap)
}

// Close releases all resources. It does NOT checkpoint; callers wanting a
// clean shutdown should call Checkpoint first (recovery replays the WAL
// otherwise).
func (db *Database) Close() error {
	if db.vacuumStop != nil {
		close(db.vacuumStop)
		<-db.vacuumDone
		db.vacuumStop = nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	var firstErr error
	for _, td := range db.tables {
		var err error
		if td.heap != nil {
			err = td.heap.Close()
			for _, ix := range td.indexes {
				if cerr := ix.tree.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
		} else if td.tree != nil {
			err = td.tree.Close()
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := db.wal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Checkpoint makes all table data durable and truncates the WAL. It is
// refused while a transaction is open (heap rollback could not undo past
// a checkpoint).
func (db *Database) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

func (db *Database) checkpointLocked() error {
	if err := db.healthErr(); err != nil {
		return err
	}
	if db.tm.explicitOpen() {
		return fmt.Errorf("core: CHECKPOINT is not allowed inside a transaction")
	}
	if err := db.inj.Point("checkpoint.begin"); err != nil {
		return err
	}
	// Once any heap has been physically compacted, its rows have moved
	// but the version metadata is only rebased at the very end: a failure
	// in between leaves no consistent in-memory image, so it must poison
	// the database (reopening replays the WAL into a clean state). Before
	// the first compaction, a checkpoint failure is just an error — disk
	// and memory are both unchanged.
	compacted := false
	fail := func(err error) error {
		if compacted {
			err = fmt.Errorf("core: checkpoint failed after heap compaction moved rows: %w", err)
			db.poison(err)
		}
		return err
	}
	// Quiescent point: db.mu is held exclusively and no explicit
	// transaction is open, so every version span is resolved. Compact
	// rolled-back rows out of the heaps before making them durable — the
	// durable image then never contains dead rows, which is what lets
	// recovery replay committed transactions by plain re-append.
	for _, td := range db.tables {
		if td.heap != nil && td.versions.deadCount() > 0 {
			compacted = true
			if err := db.compactHeapLocked(td); err != nil {
				return fail(fmt.Errorf("core: compacting %s: %w", td.def.Name, err))
			}
		}
	}
	if err := db.inj.Point("checkpoint.compacted"); err != nil {
		return fail(err)
	}
	// WAL first: every logged effect must be durable before data files
	// advance past it.
	if err := db.wal.Flush(); err != nil {
		return fail(err)
	}
	if err := db.inj.Point("checkpoint.wal-flushed"); err != nil {
		return fail(err)
	}
	for _, td := range db.tables {
		var err error
		if td.heap != nil {
			err = td.heap.Checkpoint()
			// Sealing the tail collected zone maps for the new pages; fill
			// in any pages persisted by an earlier process while we hold
			// the exclusive lock anyway.
			if err == nil {
				err = td.heap.FillZoneMaps()
			}
			for _, ix := range td.indexes {
				if err != nil {
					break
				}
				err = ix.tree.Checkpoint()
			}
		} else {
			err = td.tree.Checkpoint()
		}
		if err != nil {
			return fail(err)
		}
	}
	if err := db.inj.Point("checkpoint.tables-done"); err != nil {
		return fail(err)
	}
	if err := db.wal.Truncate(); err != nil {
		return fail(err)
	}
	// All surviving rows are committed and durable; version metadata and
	// insert sequences restart from the compacted counts.
	for _, td := range db.tables {
		td.versions.resetAtCheckpoint(td.rowCount())
		if td.heap != nil {
			td.insertSeq = td.heap.RowCount()
		}
	}
	db.checkpoints.Add(1)
	return nil
}

// compactHeapLocked rewrites a heap's suffix so rows of rolled-back
// transactions disappear physically. Called only from checkpointLocked
// (quiescent, db.mu exclusive). The first dead row is always at or above
// the durable row count — dead rows can never be durable, because the
// previous checkpoint also compacted before flushing — so the truncate
// never cuts into checkpointed pages.
func (db *Database) compactHeapLocked(td *tableData) error {
	first := td.versions.firstDead()
	if first < 0 {
		return nil
	}
	live := td.versions.visibleRanges(nil) // all spans resolved: nil = committed
	var keep []sqltypes.Row
	it := td.heap.NewVersionIterator(0, 0, true)
	ri := 0
	for {
		row, idx, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if idx < first {
			continue
		}
		for ri < len(live) && idx >= live[ri].end {
			ri++
		}
		if ri < len(live) && idx >= live[ri].start {
			keep = append(keep, row)
		}
	}
	if err := td.heap.Truncate(first); err != nil {
		return err
	}
	for _, r := range keep {
		if err := td.heap.Append(r); err != nil {
			return err
		}
	}
	td.insertSeq = td.heap.RowCount()
	// Rows moved: every secondary index's baked positions are stale.
	// Rebuild them from the compacted heap (shadow-swapped, so a crash
	// mid-rebuild leaves the old consistent file).
	for _, ix := range td.indexes {
		if err := db.rebuildIndexLocked(td, ix); err != nil {
			return err
		}
	}
	td.compactGen++
	return nil
}

// recover replays the WAL: only committed transactions are redone
// (idempotently); effects of uncommitted or aborted transactions are
// undone where storage could already contain them (clustered upserts,
// blobs) and simply skipped for heaps, whose rows never reach disk
// before a quiescent checkpoint.
func (db *Database) recover() error {
	committed := map[uint64]bool{}
	if err := db.wal.Replay(func(rec wal.Record) error {
		if rec.Type == wal.RecCommit {
			committed[rec.Txn] = true
		}
		return nil
	}); err != nil {
		return err
	}
	// Logged row indexes count every insert since the last checkpoint,
	// including ones whose transaction never committed. Those rows are
	// not replayed, so each committed row's physical position is its
	// logged index minus the non-committed inserts logged before it —
	// exactly the compaction a crash-free checkpoint would have applied.
	skipped := map[uint32]int64{}
	staleIdx := map[*indexData]bool{}
	statsReplayed := false
	err := db.wal.Replay(func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecDDL:
			// An index built mid-log baked the heap positions of its build
			// time into its entries. If any aborted insert for the table
			// preceded the build, replay compacts those rows away and every
			// position shifts — the file is stale and must be rebuilt.
			var p ddlPayload
			if err := json.Unmarshal(rec.Data, &p); err != nil || p.Op != "create_index" {
				return nil
			}
			td := db.tables[rec.Table]
			if td == nil || skipped[rec.Table] == 0 {
				return nil // dropped table, or positions agree with replay
			}
			for _, ix := range td.indexes {
				if strings.EqualFold(ix.name, p.Index) {
					staleIdx[ix] = true
				}
			}
		case wal.RecInsert:
			td := db.tables[rec.Table]
			if td == nil {
				return nil // table was dropped
			}
			if committed[rec.Txn] {
				return db.redoInsert(td, rec, skipped[rec.Table])
			}
			skipped[rec.Table]++
			return db.undoInsert(td, rec)
		case wal.RecBlobCreate:
			if !committed[rec.Txn] {
				return db.blobs.Delete(string(rec.Data))
			}
		case wal.RecBlobDelete:
			if committed[rec.Txn] {
				return db.blobs.Delete(string(rec.Data))
			}
		case wal.RecStats:
			// Re-apply ANALYZE images whose stats-file write was lost.
			if committed[rec.Txn] && db.cat.ByID(rec.Table) != nil {
				var ts stats.TableStats
				if err := json.Unmarshal(rec.Data, &ts); err != nil {
					return fmt.Errorf("core: recovery stats decode: %w", err)
				}
				db.tstats.Apply(&ts)
				statsReplayed = true
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if statsReplayed {
		if err := db.tstats.Save(); err != nil {
			return err
		}
	}
	// Replay may have re-applied inserts; re-seed the insert sequences,
	// modification counters and version floors from the recovered counts
	// (every surviving row is committed, so the whole table is visible).
	for _, td := range db.tables {
		td.insertSeq = td.rowCount()
		td.modCount.Store(td.insertSeq)
		td.versions.resetAtCheckpoint(td.insertSeq)
	}
	// Secondary indexes: rebuild the ones replay invalidated. After replay
	// every surviving heap row is committed and carries exactly one entry,
	// so a count mismatch is a second, independent staleness signal (e.g.
	// an index file lost mid-swap).
	for _, td := range db.tables {
		for _, ix := range td.indexes {
			if staleIdx[ix] || ix.tree.Count() != td.heap.RowCount() {
				if err := db.rebuildIndexLocked(td, ix); err != nil {
					return err
				}
			}
		}
	}
	// Converge: make everything durable and empty the log.
	return db.checkpointLocked()
}

// redoInsert re-applies one committed insert. skipped is the number of
// earlier non-committed inserts logged for the same table; subtracting it
// turns the logged row index into the row's physical position.
func (db *Database) redoInsert(td *tableData, rec wal.Record, skipped int64) error {
	row, _, err := td.walCodec.Decode(rec.Data, true)
	if err != nil {
		return fmt.Errorf("core: recovery decode for %s: %w", td.def.Name, err)
	}
	if td.heap != nil {
		pos := rec.RowIndex - skipped
		if pos >= td.heap.RowCount() {
			if err := td.heap.Append(row); err != nil {
				return err
			}
		}
		// Index entries are upserted even for already-durable heap rows: a
		// crash between the heap checkpoint and the index checkpoints
		// leaves rows whose entries never reached the index files.
		for _, ix := range td.indexes {
			key, err := indexEntryKey(ix.cols, row, pos)
			if err != nil {
				return err
			}
			if _, err := ix.tree.Insert(key, nil); err != nil {
				return err
			}
		}
		return nil
	}
	key, err := td.pkKey(row)
	if err != nil {
		return err
	}
	val, err := td.walCodec.EncodeAppend(nil, row)
	if err != nil {
		return err
	}
	_, err = td.tree.Insert(key, val)
	return err
}

func (db *Database) undoInsert(td *tableData, rec wal.Record) error {
	if td.tree == nil {
		// Heap rows of uncommitted transactions never reach disk (heaps
		// only persist at transaction-boundary checkpoints).
		return nil
	}
	row, _, err := td.walCodec.Decode(rec.Data, true)
	if err != nil {
		return err
	}
	key, err := td.pkKey(row)
	if err != nil {
		return err
	}
	_, err = td.tree.Delete(key)
	return err
}

// pkKey encodes the primary-key values of a storage row.
func (td *tableData) pkKey(storageRow sqltypes.Row) ([]byte, error) {
	pk := make(sqltypes.Row, len(td.def.PrimaryKey))
	for i, idx := range td.def.PrimaryKey {
		pk[i] = storageRow[idx]
	}
	return btree.AppendKey(nil, pk)
}
