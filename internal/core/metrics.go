package core

import (
	"repro/internal/obs"
)

// defaultQueryHistorySize is the query-history ring capacity when
// Options.QueryHistorySize is unset.
const defaultQueryHistorySize = 128

// defaultSlowLogSize bounds how many slow statements keep their full
// profile.
const defaultSlowLogSize = 32

// registerMetrics promotes the engine's scattered counters into the
// named gauge registry behind Metrics(). Every gauge is an atomic load
// against a live counter — snapshots never lock query execution.
func (db *Database) registerMetrics() {
	r := db.metrics
	g := func(name string, fn func() int64) { r.RegisterFunc(name, fn) }

	// Buffer pool.
	g("pool.hits", func() int64 { return db.pool.Stats().Hits })
	g("pool.misses", func() int64 { return db.pool.Stats().Misses })
	g("pool.evictions", func() int64 { return db.pool.Stats().Evictions })

	// Write-ahead log.
	g("wal.syncs", func() int64 { return db.wal.Syncs() })

	// Join operators.
	j := &db.execStats.Join
	g("exec.join.build_rows", j.BuildRows.Load)
	g("exec.join.probe_rows", j.ProbeRows.Load)
	g("exec.join.spilled_partitions", j.SpilledPartitions.Load)
	g("exec.join.spilled_build_rows", j.SpilledBuildRows.Load)
	g("exec.join.spilled_probe_rows", j.SpilledProbeRows.Load)
	g("exec.join.spill_recursions", j.SpillRecursions.Load)
	g("exec.join.bloom_checks", j.BloomChecks.Load)
	g("exec.join.bloom_drops", j.BloomDrops.Load)

	// Sort operators.
	so := &db.execStats.Sort
	g("exec.sort.sorts", so.Sorts.Load)
	g("exec.sort.runs", so.Runs.Load)
	g("exec.sort.spilled_rows", so.SpilledRows.Load)
	g("exec.sort.spilled_bytes", so.SpilledBytes.Load)
	g("exec.sort.merge_rows", so.MergeRows.Load)

	// Aggregate operators.
	a := &db.execStats.Agg
	g("exec.agg.spilled_partitions", a.SpilledPartitions.Load)
	g("exec.agg.spilled_rows", a.SpilledRows.Load)
	g("exec.agg.spilled_bytes", a.SpilledBytes.Load)
	g("exec.agg.spill_recursions", a.SpillRecursions.Load)

	// Vectorized scans.
	sc := &db.scanStats
	g("scan.batches", sc.Batches.Load)
	g("scan.rows", sc.Rows.Load)
	g("scan.values_decoded", sc.ValuesDecoded.Load)
	g("scan.dict_entries_decoded", sc.DictEntriesDecoded.Load)
	g("scan.zone_skipped_pages", sc.ZoneSkippedPages.Load)

	// Page integrity.
	g("integrity.pages_verified", func() int64 { return db.integ.Snapshot().PagesVerified })
	g("integrity.checksum_failures", func() int64 { return db.integ.Snapshot().ChecksumFailures })

	// Engine events.
	g("checkpoint.count", db.checkpoints.Load)
	g("vacuum.runs", db.vacuumRuns.Load)

	// Planner access-path picks.
	g("planner.path_picks.index", db.pathPicks.Index.Load)
	g("planner.path_picks.zonemap", db.pathPicks.ZoneMap.Load)
	g("planner.path_picks.full", db.pathPicks.Full.Load)

	// Query log.
	g("query.count", db.qlog.Total)
	g("query.slow_count", db.qlog.SlowTotal)
}

// Metrics evaluates every registered gauge into a fresh name→value map
// (JSON-marshalable; `genodb -metrics` and the REPL's \stats print it).
// Safe to call during concurrent queries.
func (db *Database) Metrics() map[string]int64 { return db.metrics.Snapshot() }

// MetricNames returns the registered gauge names, sorted.
func (db *Database) MetricNames() []string { return db.metrics.Names() }

// QueryHistory returns the recent-statement ring, newest first.
func (db *Database) QueryHistory() []obs.QueryRecord { return db.qlog.Recent() }

// SlowQueries returns the captured slow statements (those at or over
// Options.SlowQueryThreshold), newest last, each with its full rendered
// per-operator profile.
func (db *Database) SlowQueries() []obs.QueryRecord { return db.qlog.Slow() }
