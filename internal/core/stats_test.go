package core

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

// loadSkewedJoinTables fills `big` (n rows, unique v, key k over keySpace)
// and `dim` (m rows, key over keySpace): the reads ⋈ alignments shape
// with a selective filter available on big.v.
func loadSkewedJoinTables(t *testing.T, db *Database, n, m, keySpace int) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE big (k BIGINT, v BIGINT, payload VARCHAR(24))`)
	mustExec(t, db, `CREATE TABLE dim (k BIGINT, name VARCHAR(24))`)
	rows := make([]sqltypes.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewInt(int64((i * 13) % keySpace)),
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("b-%08d", i)),
		})
	}
	if err := db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	rows = rows[:0]
	for i := 0; i < m; i++ {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewInt(int64((i * 7) % keySpace)),
			sqltypes.NewString(fmt.Sprintf("d-%08d", i)),
		})
	}
	if err := db.InsertRows("dim", rows); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CHECKPOINT")
}

// TestAnalyzeCollectsAndPersists: ANALYZE fills the stats store with
// accurate numbers and the stats survive a clean close/reopen.
func TestAnalyzeCollectsAndPersists(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir, Options{DOP: 4})
	if err != nil {
		t.Fatal(err)
	}
	loadSkewedJoinTables(t, db, 12_000, 3_000, 4_000)

	res := mustExec(t, db, "ANALYZE")
	if len(res.Rows) != 2 {
		t.Fatalf("ANALYZE result rows = %v", res.Rows)
	}
	ts := db.TableStatistics("big")
	if ts == nil {
		t.Fatal("no stats for big after ANALYZE")
	}
	if ts.RowCount != 12_000 {
		t.Errorf("big RowCount = %d", ts.RowCount)
	}
	if ndv := ts.ColumnNDV("k"); math.Abs(float64(ndv)-4000) > 400 {
		t.Errorf("big.k NDV = %d, want ~4000", ndv)
	}
	if ndv := ts.ColumnNDV("v"); math.Abs(float64(ndv)-12000) > 1200 {
		t.Errorf("big.v NDV = %d, want ~12000", ndv)
	}
	if ts.AvgRowBytes <= 0 {
		t.Errorf("AvgRowBytes = %d", ts.AvgRowBytes)
	}
	if sel, ok := ts.CmpSelectivity("v", "<", sqltypes.NewInt(600)); !ok || math.Abs(sel-0.05) > 0.02 {
		t.Errorf("v < 600 selectivity = %.4f (ok=%v), want ~0.05", sel, ok)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{DOP: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	ts2 := db2.TableStatistics("big")
	if ts2 == nil {
		t.Fatal("stats lost across reopen")
	}
	if ts2.RowCount != ts.RowCount || ts2.ColumnNDV("k") != ts.ColumnNDV("k") {
		t.Errorf("stats changed across reopen: %+v vs %+v", ts2, ts)
	}
	if db2.TableStatistics("dim") == nil {
		t.Error("dim stats lost across reopen")
	}
}

// TestAnalyzeWALRecovery: the RecStats WAL record restores statistics
// when the stats file itself is lost before the next checkpoint.
func TestAnalyzeWALRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir, Options{DOP: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (a BIGINT, s VARCHAR(10))`)
	rows := make([]sqltypes.Row, 0, 2000)
	for i := 0; i < 2000; i++ {
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i % 100)), sqltypes.NewString("x")})
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "ANALYZE TABLE t")
	want := db.TableStatistics("t")
	if want == nil {
		t.Fatal("no stats after ANALYZE")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate losing the stats file in a crash: the WAL still holds the
	// ANALYZE image (no checkpoint ran after it).
	if err := os.Remove(filepath.Join(dir, "stats.json")); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{DOP: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := db2.TableStatistics("t")
	if got == nil {
		t.Fatal("stats not recovered from WAL")
	}
	if got.RowCount != want.RowCount || got.ColumnNDV("a") != want.ColumnNDV("a") {
		t.Errorf("recovered stats differ: %+v vs %+v", got, want)
	}
	// And the recovery re-saved them: they survive another reopen even
	// though the WAL has been truncated since.
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := Open(dir, Options{DOP: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if db3.TableStatistics("t") == nil {
		t.Error("stats lost after recovery re-save")
	}
}

// TestStaleStatsInvalidation: once the table drifts past the staleness
// threshold, the provider stops serving the stale distribution.
func TestStaleStatsInvalidation(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a BIGINT)`)
	rows := make([]sqltypes.Row, 0, 1000)
	for i := 0; i < 1000; i++ {
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i))})
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "ANALYZE TABLE t")
	if db.TableStatistics("t") == nil {
		t.Fatal("no stats after ANALYZE")
	}
	// Below the drift limit (max(64, 1000/5) = 200): still served.
	if err := db.InsertRows("t", rows[:150]); err != nil {
		t.Fatal(err)
	}
	if db.TableStatistics("t") == nil {
		t.Fatal("stats invalidated below the drift limit")
	}
	// Past the limit: stale, planner falls back to defaults.
	if err := db.InsertRows("t", rows[:100]); err != nil {
		t.Fatal(err)
	}
	if db.TableStatistics("t") != nil {
		t.Fatal("stale stats still served after 25% growth")
	}
	// Re-ANALYZE restores service.
	mustExec(t, db, "ANALYZE TABLE t")
	if ts := db.TableStatistics("t"); ts == nil || ts.RowCount != 1250 {
		t.Fatalf("re-ANALYZE did not refresh stats: %+v", ts)
	}
}

// TestExplainBuildSideFlipsAfterAnalyze is the acceptance scenario: on a
// skewed join with a selective filter, ANALYZE flips the partitioned
// join's build side (and the row counts stay identical).
func TestExplainBuildSideFlipsAfterAnalyze(t *testing.T) {
	db := openTestDB(t)
	loadSkewedJoinTables(t, db, 12_000, 3_000, 4_000)
	const q = `SELECT COUNT(*) FROM big JOIN dim ON big.k = dim.k WHERE big.v < 50`

	before := mustExec(t, db, "EXPLAIN "+q)
	if !strings.Contains(before.Plan, "Hash Match (Partitioned Inner Join)") {
		t.Fatalf("expected partitioned join:\n%s", before.Plan)
	}
	// Pre-stats: the default range selectivity (1/3) leaves big at ~4000
	// estimated rows > dim's 3000, so dim (the right input) builds.
	if !strings.Contains(before.Plan, "BUILD:right") {
		t.Fatalf("pre-ANALYZE build side should be dim (right):\n%s", before.Plan)
	}
	wantRows := mustExec(t, db, q).Rows

	mustExec(t, db, "ANALYZE")
	after := mustExec(t, db, "EXPLAIN "+q)
	// Post-stats: v < 50 keeps ~50 of 12000 rows, so the filtered big
	// side (left) becomes the build side.
	if !strings.Contains(after.Plan, "BUILD:left") {
		t.Fatalf("post-ANALYZE build side should flip to big (left):\n%s", after.Plan)
	}
	if !strings.Contains(after.Plan, "est=") {
		t.Fatalf("post-ANALYZE plan missing estimates:\n%s", after.Plan)
	}
	gotRows := mustExec(t, db, q).Rows
	if len(gotRows) != 1 || len(wantRows) != 1 || gotRows[0][0].I != wantRows[0][0].I {
		t.Fatalf("flip changed the result: %v vs %v", gotRows, wantRows)
	}
	if gotRows[0][0].I == 0 {
		t.Fatal("test setup: join produced no rows")
	}
}

// TestJoinBloomCountersThroughSQL: the Bloom filter engages on a skewed
// SQL join (build keys are a small subset of probe keys) and its drops
// surface in ExecStats; disabling it via Options removes them.
func TestJoinBloomCountersThroughSQL(t *testing.T) {
	run := func(disable bool) (int64, int64) {
		db, err := Open(filepath.Join(t.TempDir(), "db"), Options{DOP: 2, DisableJoinBloom: disable})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		mustExec(t, db, `CREATE TABLE probe (k BIGINT, s VARCHAR(16))`)
		mustExec(t, db, `CREATE TABLE build (k BIGINT, s VARCHAR(16))`)
		rows := make([]sqltypes.Row, 0, 6000)
		for i := 0; i < 6000; i++ {
			rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewString("p")})
		}
		if err := db.InsertRows("probe", rows); err != nil {
			t.Fatal(err)
		}
		rows = rows[:0]
		for i := 0; i < 3000; i++ {
			rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i % 300)), sqltypes.NewString("b")})
		}
		if err := db.InsertRows("build", rows); err != nil {
			t.Fatal(err)
		}
		before := db.ExecStats()
		res := mustExec(t, db, `SELECT COUNT(*) FROM probe JOIN build ON probe.k = build.k`)
		if res.Rows[0][0].I != 3000 { // every build row matches exactly one probe row
			t.Fatalf("join count = %v", res.Rows)
		}
		d := db.ExecStats().Sub(before)
		return d.Join.BloomChecks, d.Join.BloomDrops
	}
	checks, drops := run(false)
	if checks == 0 || drops == 0 {
		t.Fatalf("expected bloom activity: checks=%d drops=%d", checks, drops)
	}
	if checks2, drops2 := run(true); checks2 != 0 || drops2 != 0 {
		t.Fatalf("DisableJoinBloom leaked bloom activity: checks=%d drops=%d", checks2, drops2)
	}
}

// TestMergeJoinWherePushdown guards the merge-join predicate fix through
// the full SQL stack: a filtered clustered-key join must honor its WHERE
// (it used to return the unfiltered join).
func TestMergeJoinWherePushdown(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE ml (id BIGINT PRIMARY KEY CLUSTERED, lv VARCHAR(16))`)
	mustExec(t, db, `CREATE TABLE mr (id BIGINT PRIMARY KEY CLUSTERED, rv VARCHAR(16))`)
	rows := make([]sqltypes.Row, 0, 200)
	for i := 0; i < 200; i++ {
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("L%d", i))})
	}
	if err := db.InsertRows("ml", rows); err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		rows[i][1] = sqltypes.NewString(fmt.Sprintf("R%d", i))
	}
	if err := db.InsertRows("mr", rows); err != nil {
		t.Fatal(err)
	}
	plan := mustExec(t, db, `EXPLAIN SELECT lv, rv FROM ml JOIN mr ON ml.id = mr.id WHERE ml.id = 17`)
	if !strings.Contains(plan.Plan, "Merge Join") {
		t.Fatalf("expected merge join:\n%s", plan.Plan)
	}
	res := mustExec(t, db, `SELECT lv, rv FROM ml JOIN mr ON ml.id = mr.id WHERE ml.id = 17`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "L17" || res.Rows[0][1].S != "R17" {
		t.Fatalf("merge join dropped WHERE: %v", res.Rows)
	}
	// Range predicates on both sides.
	res = mustExec(t, db, `SELECT COUNT(*) FROM ml JOIN mr ON ml.id = mr.id WHERE ml.id >= 10 AND mr.id < 20`)
	if res.Rows[0][0].I != 10 {
		t.Fatalf("two-sided WHERE count = %v", res.Rows)
	}
}

// TestAnalyzeConcurrentWithQueries: the collection phase runs under the
// shared lock, so SELECTs proceed while ANALYZE scans (this test mostly
// exists for the -race run).
func TestAnalyzeConcurrentWithQueries(t *testing.T) {
	db := openTestDB(t)
	loadSkewedJoinTables(t, db, 8_000, 2_000, 2_000)
	done := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 20; i++ {
			if _, err = db.Query(`SELECT COUNT(*) FROM big WHERE v < 4000`); err != nil {
				break
			}
		}
		done <- err
	}()
	for i := 0; i < 3; i++ {
		mustExec(t, db, "ANALYZE")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if db.TableStatistics("big") == nil {
		t.Fatal("no stats after concurrent ANALYZE")
	}
}

// TestCorruptStatsFileDoesNotBlockOpen: statistics are advisory, so a
// torn stats.json must be set aside on open rather than failing it.
func TestCorruptStatsFileDoesNotBlockOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir, Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (a BIGINT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (2)`)
	mustExec(t, db, "ANALYZE")
	// Truncate the WAL so its RecStats image cannot restore the stats —
	// this test isolates the corrupt-file path.
	mustExec(t, db, "CHECKPOINT")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stats.json"), []byte(`{"tables": [{tru`), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{DOP: 1})
	if err != nil {
		t.Fatalf("corrupt stats file blocked open: %v", err)
	}
	defer db2.Close()
	if db2.TableStatistics("t") != nil {
		t.Error("corrupt stats served as valid")
	}
	// The engine is fully usable and re-ANALYZE restores stats.
	mustExec(t, db2, "ANALYZE")
	if db2.TableStatistics("t") == nil {
		t.Error("re-ANALYZE after corruption failed to restore stats")
	}
	if _, err := os.Stat(filepath.Join(dir, "stats.json.corrupt")); err != nil {
		t.Errorf("corrupt file not set aside: %v", err)
	}
}
