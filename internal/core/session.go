package core

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// Result is the outcome of one statement.
type Result struct {
	Cols         []string
	Rows         []sqltypes.Row
	RowsAffected int64
	Plan         string // EXPLAIN output
}

// Exec parses and executes one SQL statement.
func (db *Database) Exec(sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(stmt)
}

// ExecScript executes a semicolon-separated script, returning the last
// statement's result.
func (db *Database) ExecScript(sql string) (*Result, error) {
	stmts, err := sqlparse.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	var res *Result
	for _, s := range stmts {
		res, err = db.ExecStmt(s)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ExecStmt executes a parsed statement.
func (db *Database) ExecStmt(stmt sqlparse.Statement) (*Result, error) {
	switch t := stmt.(type) {
	case *sqlparse.Select:
		db.mu.RLock()
		defer db.mu.RUnlock()
		return db.runSelectLocked(t)
	case *sqlparse.Explain:
		db.mu.RLock()
		defer db.mu.RUnlock()
		return db.explainLocked(t.Stmt)
	case *sqlparse.Insert:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.runInsertLocked(t)
	case *sqlparse.CreateTable:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.runCreateTableLocked(t)
	case *sqlparse.DropTable:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.runDropTableLocked(t)
	case *sqlparse.BeginTxn:
		return &Result{}, db.Begin()
	case *sqlparse.CommitTxn:
		return &Result{}, db.Commit()
	case *sqlparse.RollbackTxn:
		return &Result{}, db.Rollback()
	case *sqlparse.Checkpoint:
		return &Result{}, db.Checkpoint()
	case *sqlparse.Analyze:
		// Takes its own locks: collection under RLock, persist under Lock.
		return db.runAnalyze(t)
	}
	return nil, fmt.Errorf("core: unsupported statement %T", stmt)
}

// Query is a convenience for SELECT statements.
func (db *Database) Query(sql string) (*Result, error) {
	return db.Exec(sql)
}

// execContext builds the per-query execution context: the configured DOP
// plus the engine-wide operator counters.
func (db *Database) execContext() *exec.Context {
	return &exec.Context{DOP: db.dop, Stats: &db.execStats}
}

// runSelectLocked plans and executes a SELECT (callers hold db.mu in some
// mode).
func (db *Database) runSelectLocked(sel *sqlparse.Select) (*Result, error) {
	node, err := db.planner.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	op, err := node.Build()
	if err != nil {
		return nil, err
	}
	rows, err := exec.Run(db.execContext(), op)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(node.Cols))
	for i, c := range node.Cols {
		cols[i] = c.Name
	}
	return &Result{Cols: cols, Rows: rows}, nil
}

func (db *Database) explainLocked(stmt sqlparse.Statement) (*Result, error) {
	var sel *sqlparse.Select
	switch t := stmt.(type) {
	case *sqlparse.Select:
		sel = t
	case *sqlparse.Insert:
		if t.Query == nil {
			return nil, fmt.Errorf("core: EXPLAIN supports SELECT and INSERT ... SELECT")
		}
		sel = t.Query
	default:
		return nil, fmt.Errorf("core: EXPLAIN supports SELECT and INSERT ... SELECT")
	}
	node, err := db.planner.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	text := node.Explain()
	res := &Result{Cols: []string{"plan"}, Plan: text}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, sqltypes.Row{sqltypes.NewString(line)})
	}
	return res, nil
}

func (db *Database) runInsertLocked(ins *sqlparse.Insert) (*Result, error) {
	td, err := db.table(ins.Table)
	if err != nil {
		return nil, err
	}
	// Map the column list to positions.
	colIdx := make([]int, 0, len(ins.Cols))
	for _, name := range ins.Cols {
		idx := td.def.ColumnIndex(name)
		if idx < 0 {
			return nil, fmt.Errorf("core: table %s has no column %q", td.def.Name, name)
		}
		colIdx = append(colIdx, idx)
	}
	width := len(colIdx)
	if width == 0 {
		width = len(td.def.Columns)
	}

	t := db.currentTxnLocked()
	var n int64
	insertOne := func(vals sqltypes.Row) error {
		if len(vals) != width {
			return fmt.Errorf("core: INSERT expects %d values, got %d", width, len(vals))
		}
		row := make(sqltypes.Row, len(td.def.Columns))
		if len(colIdx) > 0 {
			for i, idx := range colIdx {
				row[idx] = vals[i]
			}
		} else {
			copy(row, vals)
		}
		if err := db.insertRow(t, td, row); err != nil {
			return err
		}
		n++
		return nil
	}

	var execErr error
	switch {
	case ins.Rows != nil:
		for _, astRow := range ins.Rows {
			vals := make(sqltypes.Row, len(astRow))
			for i, e := range astRow {
				bound, err := db.planner.BindConstant(e)
				if err != nil {
					execErr = err
					break
				}
				v, err := bound.Eval(nil)
				if err != nil {
					execErr = err
					break
				}
				vals[i] = v
			}
			if execErr == nil {
				execErr = insertOne(vals)
			}
			if execErr != nil {
				break
			}
		}
	case ins.Query != nil:
		planned, err := db.planner.PlanSelect(ins.Query)
		if err != nil {
			execErr = err
			break
		}
		op, err := planned.Build()
		if err != nil {
			execErr = err
			break
		}
		execErr = func() error {
			if err := op.Open(db.execContext()); err != nil {
				return err
			}
			defer op.Close()
			for {
				row, ok, err := op.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				if err := insertOne(row); err != nil {
					return err
				}
			}
		}()
	default:
		execErr = fmt.Errorf("core: INSERT requires VALUES or SELECT")
	}
	if err := db.finishAutoLocked(t, execErr); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: n}, nil
}

func (db *Database) runCreateTableLocked(ct *sqlparse.CreateTable) (*Result, error) {
	if db.txn != nil {
		return nil, fmt.Errorf("core: DDL inside a transaction is not supported")
	}
	def := &catalog.Table{Name: ct.Name, Clustered: ct.Clustered}
	for _, c := range ct.Cols {
		typ, err := catalog.ParseType(c.Type)
		if err != nil {
			return nil, err
		}
		def.Columns = append(def.Columns, catalog.Column{
			Name:    c.Name,
			Type:    typ,
			NotNull: c.NotNull || c.PK,
		})
	}
	for _, pk := range ct.PK {
		idx := def.ColumnIndex(pk)
		if idx < 0 {
			return nil, fmt.Errorf("core: PRIMARY KEY column %q not found", pk)
		}
		def.PrimaryKey = append(def.PrimaryKey, idx)
	}
	switch ct.Compression {
	case "", "NONE":
		def.Compression = storage.CompressNone
	case "ROW":
		def.Compression = storage.CompressRow
	case "PAGE":
		def.Compression = storage.CompressPage
	}
	if def.Clustered && def.Compression == storage.CompressPage {
		return nil, fmt.Errorf("core: PAGE compression is supported on heap tables only (use ROW for clustered tables)")
	}
	if err := db.cat.Create(def); err != nil {
		return nil, err
	}
	if err := db.openTableStorage(def); err != nil {
		db.cat.Drop(def.Name)
		return nil, err
	}
	return &Result{}, nil
}

func (db *Database) runDropTableLocked(dt *sqlparse.DropTable) (*Result, error) {
	if db.txn != nil {
		return nil, fmt.Errorf("core: DDL inside a transaction is not supported")
	}
	def := db.cat.Get(dt.Name)
	if def == nil {
		return nil, fmt.Errorf("core: unknown table %q", dt.Name)
	}
	td := db.tables[def.ID]
	if td != nil {
		if td.heap != nil {
			td.heap.Close()
		} else if td.tree != nil {
			td.tree.Close()
		}
		delete(db.tables, def.ID)
	}
	if err := db.cat.Drop(dt.Name); err != nil {
		return nil, err
	}
	if err := db.tstats.Drop(def.ID); err != nil {
		return nil, err
	}
	if err := removeFile(db.tablePath(def)); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// InsertRows is the bulk Go-API insert path used by loaders and
// experiments: it bypasses SQL parsing but follows the same WAL and
// transaction protocol.
func (db *Database) InsertRows(table string, rows []sqltypes.Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	td, err := db.table(table)
	if err != nil {
		return err
	}
	t := db.currentTxnLocked()
	var execErr error
	for _, r := range rows {
		if execErr = db.insertRow(t, td, r); execErr != nil {
			break
		}
	}
	return db.finishAutoLocked(t, execErr)
}

// ImportFileStream imports a file as a FileStream blob and inserts a row
// into the given table, placing the new GUID in the FILESTREAM column and
// the provided values in the remaining columns (by name). It is the
// engine's OPENROWSET(BULK ..., SINGLE_BLOB) ingest path from the paper's
// Section 3.3 example.
func (db *Database) ImportFileStream(table, srcPath string, values map[string]sqltypes.Value) (guid string, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	td, err := db.table(table)
	if err != nil {
		return "", err
	}
	fsCol := -1
	for i := range td.def.Columns {
		if td.def.Columns[i].Type.FileStream {
			fsCol = i
			break
		}
	}
	if fsCol < 0 {
		return "", fmt.Errorf("core: table %s has no FILESTREAM column", table)
	}
	t := db.currentTxnLocked()
	guid = newGUIDForImport()
	execErr := func() error {
		if _, err := db.createBlobInTxn(t, guid, srcPath); err != nil {
			return err
		}
		row := make(sqltypes.Row, len(td.def.Columns))
		for name, v := range values {
			idx := td.def.ColumnIndex(name)
			if idx < 0 {
				return fmt.Errorf("core: table %s has no column %q", table, name)
			}
			row[idx] = v
		}
		row[fsCol] = sqltypes.NewBytes([]byte(guid))
		// A FILESTREAM column stores the GUID; the catalog treats it as
		// VARBINARY, so hand it the GUID bytes.
		if err := db.insertRow(t, td, row); err != nil {
			return err
		}
		// Imports are automatically provenance-tracked (the paper's
		// future-work item): what was loaded, from where, into which
		// table, with which metadata.
		_, err := db.recordProvenanceInTxn(t, ProvenanceRecord{
			Entity:   BlobEntity(guid),
			Activity: "import",
			Tool:     "ImportFileStream",
			Params:   describeValues(values),
			Inputs:   "file:" + srcPath,
		})
		return err
	}()
	if err := db.finishAutoLocked(t, execErr); err != nil {
		return "", err
	}
	return guid, nil
}

// OpenBlob opens a FileStream blob for streaming reads.
func (db *Database) OpenBlob(guid string) (*BlobStream, error) {
	s, err := db.blobs.Open(guid)
	if err != nil {
		return nil, err
	}
	return (*BlobStream)(s), nil
}

// TableSizeBytes returns the allocated storage size of a table.
func (db *Database) TableSizeBytes(table string) (int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.table(table)
	if err != nil {
		return 0, err
	}
	if td.heap != nil {
		return td.heap.SizeBytes(), nil
	}
	return td.tree.SizeBytes(), nil
}

// TableUsedBytes returns the payload bytes of a heap table (page-internal
// accounting used by the storage experiments).
func (db *Database) TableUsedBytes(table string) (int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.table(table)
	if err != nil {
		return 0, err
	}
	if td.heap == nil {
		return td.tree.SizeBytes(), nil
	}
	return td.heap.UsedBytes()
}

// ScanTableNoLock iterates every row of a table WITHOUT acquiring the
// session lock. It exists for table-valued functions that execute inside
// a query (which already holds the lock; re-acquiring could deadlock
// against a waiting writer). Callers must not run DDL concurrently.
func (db *Database) ScanTableNoLock(table string, fn func(sqltypes.Row) error) error {
	def := db.cat.Get(table)
	if def == nil {
		return fmt.Errorf("core: unknown table %q", table)
	}
	ops, err := db.ScanPartitions(def, 1)
	if err != nil {
		return err
	}
	op := ops[0]
	if err := op.Open(&exec.Context{DOP: 1, Stats: &db.execStats}); err != nil {
		return err
	}
	defer op.Close()
	for {
		row, ok, err := op.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(row); err != nil {
			return err
		}
	}
}

// TableRowCount returns a table's row count.
func (db *Database) TableRowCount(table string) (int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.table(table)
	if err != nil {
		return 0, err
	}
	return td.rowCount(), nil
}
