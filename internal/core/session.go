package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// Result is the outcome of one statement.
type Result struct {
	Cols         []string
	Rows         []sqltypes.Row
	RowsAffected int64
	Plan         string // EXPLAIN output
}

// Session is one connection to the database: it owns at most one open
// transaction and runs its statements one at a time. Sessions are
// independent — each reads under its own MVCC snapshot, so a SELECT or
// ANALYZE in one session never blocks behind an open transaction in
// another. A Session is safe for concurrent use; statements serialize on
// the session, not on the engine.
type Session struct {
	db  *Database
	mu  sync.Mutex
	txn *Txn // open explicit transaction, nil otherwise
}

// NewSession opens an independent session. Sessions need no Close: an
// abandoned one at most pins the vacuum horizon until its transaction
// handle is garbage collected, and a clean shutdown only requires not
// leaving transactions open.
func (db *Database) NewSession() *Session {
	return &Session{db: db}
}

// Exec parses and executes one SQL statement on the database's default
// session. Independent callers wanting transaction isolation from each
// other should use NewSession.
func (db *Database) Exec(sql string) (*Result, error) { return db.defaultSess.Exec(sql) }

// ExecScript executes a semicolon-separated script on the default
// session, returning the last statement's result.
func (db *Database) ExecScript(sql string) (*Result, error) { return db.defaultSess.ExecScript(sql) }

// ExecStmt executes a parsed statement on the default session.
func (db *Database) ExecStmt(stmt sqlparse.Statement) (*Result, error) {
	return db.defaultSess.ExecStmt(stmt)
}

// Query is a convenience for SELECT statements.
func (db *Database) Query(sql string) (*Result, error) { return db.Exec(sql) }

// Begin opens an explicit transaction on the default session.
func (db *Database) Begin() error { return db.defaultSess.Begin() }

// Commit commits the default session's open transaction.
func (db *Database) Commit() error { return db.defaultSess.Commit() }

// Rollback aborts the default session's open transaction.
func (db *Database) Rollback() error { return db.defaultSess.Rollback() }

// Exec parses and executes one SQL statement.
func (s *Session) Exec(sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.execStmt(stmt, sql)
}

// Query is a convenience for SELECT statements.
func (s *Session) Query(sql string) (*Result, error) { return s.Exec(sql) }

// ExecScript executes a semicolon-separated script, returning the last
// statement's result.
func (s *Session) ExecScript(sql string) (*Result, error) {
	stmts, err := sqlparse.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var res *Result
	for _, st := range stmts {
		res, err = s.execStmt(st.Stmt, st.SQL)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ExecStmt executes a parsed statement.
func (s *Session) ExecStmt(stmt sqlparse.Statement) (*Result, error) {
	return s.execStmt(stmt, "")
}

// execStmt executes a parsed statement; sql is the original text when
// the caller had one (it labels the statement in the query history).
func (s *Session) execStmt(stmt sqlparse.Statement, sql string) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db := s.db
	if err := db.healthErr(); err != nil {
		return nil, err
	}
	switch t := stmt.(type) {
	case *sqlparse.Select:
		db.mu.RLock()
		defer db.mu.RUnlock()
		snap, release := s.statementSnapshot()
		defer release()
		return db.runSelectLogged(t, snap, sql)
	case *sqlparse.Explain:
		db.mu.RLock()
		defer db.mu.RUnlock()
		if t.Analyze {
			snap, release := s.statementSnapshot()
			defer release()
			return db.explainAnalyze(t.Stmt, snap, sql)
		}
		return db.explain(t.Stmt)
	case *sqlparse.Insert:
		db.mu.RLock()
		defer db.mu.RUnlock()
		return s.runInsert(t)
	case *sqlparse.CreateTable:
		db.mu.Lock()
		defer db.mu.Unlock()
		if err := s.refuseDDLInTxn(); err != nil {
			return nil, err
		}
		return db.runCreateTable(t)
	case *sqlparse.DropTable:
		db.mu.Lock()
		defer db.mu.Unlock()
		if err := s.refuseDDLInTxn(); err != nil {
			return nil, err
		}
		return db.runDropTable(t)
	case *sqlparse.CreateIndex:
		// Takes its own locks: the parallel entry build runs under the
		// shared lock, only the catch-up + commit phase is exclusive.
		return db.runCreateIndex(s, t)
	case *sqlparse.DropIndex:
		db.mu.Lock()
		defer db.mu.Unlock()
		if err := s.refuseDDLInTxn(); err != nil {
			return nil, err
		}
		return db.runDropIndex(t)
	case *sqlparse.BeginTxn:
		return &Result{}, s.beginLocked()
	case *sqlparse.CommitTxn:
		return &Result{}, s.commitLocked()
	case *sqlparse.RollbackTxn:
		return &Result{}, s.rollbackLocked()
	case *sqlparse.Checkpoint:
		return &Result{}, db.Checkpoint()
	case *sqlparse.Analyze:
		// Takes its own locks: collection under RLock, persist under Lock.
		return db.runAnalyze(s, t)
	}
	return nil, fmt.Errorf("core: unsupported statement %T", stmt)
}

// refuseDDLInTxn rejects DDL while any transaction is open: catalog and
// storage changes are not versioned, so they cannot coexist with
// snapshots that must not see them.
func (s *Session) refuseDDLInTxn() error {
	if s.txn != nil || s.db.tm.explicitOpen() {
		return fmt.Errorf("core: DDL inside a transaction is not supported")
	}
	return nil
}

// Begin opens an explicit transaction with a snapshot fixed at BEGIN.
func (s *Session) Begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.beginLocked()
}

func (s *Session) beginLocked() error {
	if err := s.db.healthErr(); err != nil {
		return err
	}
	if s.txn != nil {
		return fmt.Errorf("core: a transaction is already open")
	}
	// Under the structure lock so the snapshot cannot straddle a
	// checkpoint's version-metadata reset.
	s.db.mu.RLock()
	s.txn = s.db.newTxn(false)
	s.db.mu.RUnlock()
	return nil
}

// Commit commits the session's open transaction.
func (s *Session) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commitLocked()
}

func (s *Session) commitLocked() error {
	if s.txn == nil {
		return fmt.Errorf("core: no open transaction")
	}
	t := s.txn
	s.txn = nil
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	return s.db.commitTxn(t)
}

// Rollback aborts the session's open transaction, undoing its effects.
func (s *Session) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rollbackLocked()
}

func (s *Session) rollbackLocked() error {
	if s.txn == nil {
		return fmt.Errorf("core: no open transaction")
	}
	t := s.txn
	s.txn = nil
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	return s.db.rollbackTxn(t)
}

// currentTxn returns the open transaction or a fresh autocommit one.
// Callers hold db.mu (any mode).
func (s *Session) currentTxn() *Txn {
	if s.txn != nil {
		return s.txn
	}
	return s.db.newTxn(true)
}

// statementSnapshot returns the snapshot a read statement runs under: the
// transaction's own (repeatable reads + read-your-writes) inside an
// explicit transaction, otherwise a fresh statement-scoped one. Callers
// hold db.mu (any mode).
func (s *Session) statementSnapshot() (*Snapshot, func()) {
	if s.txn != nil {
		return s.txn.snap, func() {}
	}
	snap := s.db.tm.readSnapshot()
	return snap, func() { s.db.tm.releaseSnapshot(snap) }
}

// execContext builds the per-query execution context: the configured DOP,
// the engine-wide operator counters, and the statement's snapshot.
func (db *Database) execContext(snap *Snapshot) *exec.Context {
	return &exec.Context{DOP: db.dop, Stats: &db.execStats, Snapshot: snap, BatchSize: db.batchSize}
}

// runSelect plans and executes a SELECT (callers hold db.mu in some
// mode).
func (db *Database) runSelect(sel *sqlparse.Select, snap *Snapshot) (*Result, error) {
	res, _, err := db.runSelectProfiled(sel, snap, false)
	return res, err
}

// runSelectProfiled plans, instruments and executes a SELECT, returning
// the executed plan tree alongside the result so callers can read the
// accumulated per-operator profiles. With timed set (EXPLAIN ANALYZE)
// the profile wrappers also record wall time; otherwise only the cheap
// always-on counters accrue (none at all under DisableInstrumentation).
func (db *Database) runSelectProfiled(sel *sqlparse.Select, snap *Snapshot, timed bool) (*Result, *plan.Node, error) {
	node, err := db.planner.PlanSelect(sel)
	if err != nil {
		return nil, nil, err
	}
	if timed || !db.noInstr {
		node.Instrument(timed)
	}
	op, err := node.Build()
	if err != nil {
		return nil, nil, err
	}
	rows, err := exec.Run(db.execContext(snap), op)
	if err != nil {
		return nil, node, err
	}
	cols := make([]string, len(node.Cols))
	for i, c := range node.Cols {
		cols[i] = c.Name
	}
	return &Result{Cols: cols, Rows: rows}, node, nil
}

// runSelectLogged is the statement-path SELECT: it profiles the
// execution, records it in the query history, and — when the statement
// ran at or over the slow threshold — captures the full rendered
// profile in the slow-query log.
func (db *Database) runSelectLogged(sel *sqlparse.Select, snap *Snapshot, sql string) (*Result, error) {
	start := time.Now()
	res, node, err := db.runSelectProfiled(sel, snap, false)
	total := time.Since(start)
	rec := obs.QueryRecord{SQL: queryLabel(sql, "SELECT"), Start: start, Duration: total}
	if err != nil {
		rec.Err = err.Error()
	} else {
		rec.Rows = int64(len(res.Rows))
	}
	if node != nil {
		rec.SpillBytes = node.SpillBytes()
		if err == nil && db.qlog.Threshold() > 0 && total >= db.qlog.Threshold() {
			rec.Profile = node.ExplainAnalyze(total, rec.Rows)
		}
	}
	db.qlog.Record(rec)
	return res, err
}

// queryLabel returns the history label for a statement: its SQL text
// when the caller supplied one, a placeholder for pre-parsed statements.
func queryLabel(sql, kind string) string {
	if sql != "" {
		return sql
	}
	return "(" + kind + " via ExecStmt)"
}

// explainAnalyze executes EXPLAIN ANALYZE <select>: the statement runs
// to completion with timed per-operator instrumentation, then the plan
// tree is rendered with actual row counts, estimate ratios, wall time
// and spill/Bloom/pool detail per node. The row results are discarded —
// the rendered plan is the statement's output.
func (db *Database) explainAnalyze(stmt sqlparse.Statement, snap *Snapshot, sql string) (*Result, error) {
	sel, ok := stmt.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("core: EXPLAIN ANALYZE supports SELECT only")
	}
	start := time.Now()
	res, node, err := db.runSelectProfiled(sel, snap, true)
	total := time.Since(start)
	rec := obs.QueryRecord{SQL: queryLabel(sql, "EXPLAIN ANALYZE"), Start: start, Duration: total}
	if node != nil {
		rec.SpillBytes = node.SpillBytes()
	}
	if err != nil {
		rec.Err = err.Error()
		db.qlog.Record(rec)
		return nil, err
	}
	rec.Rows = int64(len(res.Rows))
	text := node.ExplainAnalyze(total, rec.Rows)
	if db.qlog.Threshold() > 0 && total >= db.qlog.Threshold() {
		rec.Profile = text
	}
	db.qlog.Record(rec)
	out := &Result{Cols: []string{"plan"}, Plan: text}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		out.Rows = append(out.Rows, sqltypes.Row{sqltypes.NewString(line)})
	}
	return out, nil
}

func (db *Database) explain(stmt sqlparse.Statement) (*Result, error) {
	var sel *sqlparse.Select
	switch t := stmt.(type) {
	case *sqlparse.Select:
		sel = t
	case *sqlparse.Insert:
		if t.Query == nil {
			return nil, fmt.Errorf("core: EXPLAIN supports SELECT and INSERT ... SELECT")
		}
		sel = t.Query
	default:
		return nil, fmt.Errorf("core: EXPLAIN supports SELECT and INSERT ... SELECT")
	}
	node, err := db.planner.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	text := node.Explain()
	res := &Result{Cols: []string{"plan"}, Plan: text}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, sqltypes.Row{sqltypes.NewString(line)})
	}
	return res, nil
}

// runInsert executes INSERT under the shared structure lock; row-level
// write synchronization happens in insertRow via the table write latch.
func (s *Session) runInsert(ins *sqlparse.Insert) (*Result, error) {
	db := s.db
	td, err := db.table(ins.Table)
	if err != nil {
		return nil, err
	}
	// Map the column list to positions.
	colIdx := make([]int, 0, len(ins.Cols))
	for _, name := range ins.Cols {
		idx := td.def.ColumnIndex(name)
		if idx < 0 {
			return nil, fmt.Errorf("core: table %s has no column %q", td.def.Name, name)
		}
		colIdx = append(colIdx, idx)
	}
	width := len(colIdx)
	if width == 0 {
		width = len(td.def.Columns)
	}

	t := s.currentTxn()
	var n int64
	insertOne := func(vals sqltypes.Row) error {
		if len(vals) != width {
			return fmt.Errorf("core: INSERT expects %d values, got %d", width, len(vals))
		}
		row := make(sqltypes.Row, len(td.def.Columns))
		if len(colIdx) > 0 {
			for i, idx := range colIdx {
				row[idx] = vals[i]
			}
		} else {
			copy(row, vals)
		}
		if err := db.insertRow(t, td, row); err != nil {
			return err
		}
		n++
		return nil
	}

	var execErr error
	switch {
	case ins.Rows != nil:
		for _, astRow := range ins.Rows {
			vals := make(sqltypes.Row, len(astRow))
			for i, e := range astRow {
				bound, err := db.planner.BindConstant(e)
				if err != nil {
					execErr = err
					break
				}
				v, err := bound.Eval(nil)
				if err != nil {
					execErr = err
					break
				}
				vals[i] = v
			}
			if execErr == nil {
				execErr = insertOne(vals)
			}
			if execErr != nil {
				break
			}
		}
	case ins.Query != nil:
		planned, err := db.planner.PlanSelect(ins.Query)
		if err != nil {
			execErr = err
			break
		}
		op, err := planned.Build()
		if err != nil {
			execErr = err
			break
		}
		// The scan runs under the inserting transaction's snapshot, and is
		// fully materialized before the first insert: the source row set
		// is fixed (no Halloween self-chasing), and scan latches — a
		// clustered source holds its table's write latch shared — are
		// released before insertRow needs them exclusively.
		rows, err := exec.Run(db.execContext(t.snap), op)
		if err != nil {
			execErr = err
			break
		}
		for _, row := range rows {
			if execErr = insertOne(row); execErr != nil {
				break
			}
		}
	default:
		execErr = fmt.Errorf("core: INSERT requires VALUES or SELECT")
	}
	if err := db.finishAuto(t, execErr); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: n}, nil
}

func (db *Database) runCreateTable(ct *sqlparse.CreateTable) (*Result, error) {
	def := &catalog.Table{Name: ct.Name, Clustered: ct.Clustered}
	for _, c := range ct.Cols {
		typ, err := catalog.ParseType(c.Type)
		if err != nil {
			return nil, err
		}
		def.Columns = append(def.Columns, catalog.Column{
			Name:    c.Name,
			Type:    typ,
			NotNull: c.NotNull || c.PK,
		})
	}
	for _, pk := range ct.PK {
		idx := def.ColumnIndex(pk)
		if idx < 0 {
			return nil, fmt.Errorf("core: PRIMARY KEY column %q not found", pk)
		}
		def.PrimaryKey = append(def.PrimaryKey, idx)
	}
	switch ct.Compression {
	case "", "NONE":
		def.Compression = storage.CompressNone
	case "ROW":
		def.Compression = storage.CompressRow
	case "PAGE":
		def.Compression = storage.CompressPage
	}
	if def.Clustered && def.Compression == storage.CompressPage {
		return nil, fmt.Errorf("core: PAGE compression is supported on heap tables only (use ROW for clustered tables)")
	}
	if err := db.cat.Create(def); err != nil {
		return nil, err
	}
	if err := db.openTableStorage(def); err != nil {
		db.cat.Drop(def.Name)
		return nil, err
	}
	return &Result{}, nil
}

func (db *Database) runDropTable(dt *sqlparse.DropTable) (*Result, error) {
	def := db.cat.Get(dt.Name)
	if def == nil {
		return nil, fmt.Errorf("core: unknown table %q", dt.Name)
	}
	td := db.tables[def.ID]
	if td != nil {
		if td.heap != nil {
			td.heap.Close()
			for _, ix := range td.indexes {
				ix.tree.Close()
				if err := removeFile(ix.path); err != nil {
					return nil, err
				}
			}
		} else if td.tree != nil {
			td.tree.Close()
		}
		delete(db.tables, def.ID)
	}
	if err := db.cat.Drop(dt.Name); err != nil {
		return nil, err
	}
	if err := db.tstats.Drop(def.ID); err != nil {
		return nil, err
	}
	if err := removeFile(db.tablePath(def)); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// InsertRows is the bulk Go-API insert path used by loaders and
// experiments: it bypasses SQL parsing but follows the same WAL and
// transaction protocol. On the Database it uses the default session;
// Session.InsertRows joins that session's open transaction.
func (db *Database) InsertRows(table string, rows []sqltypes.Row) error {
	return db.defaultSess.InsertRows(table, rows)
}

// InsertRows bulk-inserts rows within the session's transaction scope.
func (s *Session) InsertRows(table string, rows []sqltypes.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	db := s.db
	if err := db.healthErr(); err != nil {
		return err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.table(table)
	if err != nil {
		return err
	}
	t := s.currentTxn()
	var execErr error
	for _, r := range rows {
		if execErr = db.insertRow(t, td, r); execErr != nil {
			break
		}
	}
	return db.finishAuto(t, execErr)
}

// ImportFileStream imports a file as a FileStream blob and inserts a row
// into the given table, placing the new GUID in the FILESTREAM column and
// the provided values in the remaining columns (by name). It is the
// engine's OPENROWSET(BULK ..., SINGLE_BLOB) ingest path from the paper's
// Section 3.3 example.
func (db *Database) ImportFileStream(table, srcPath string, values map[string]sqltypes.Value) (string, error) {
	return db.defaultSess.ImportFileStream(table, srcPath, values)
}

// ImportFileStream imports a blob + row + provenance record in one
// transaction on this session.
func (s *Session) ImportFileStream(table, srcPath string, values map[string]sqltypes.Value) (guid string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db := s.db
	if err := db.healthErr(); err != nil {
		return "", err
	}
	// Exclusive: the import may create the provenance table (DDL).
	db.mu.Lock()
	defer db.mu.Unlock()
	td, err := db.table(table)
	if err != nil {
		return "", err
	}
	fsCol := -1
	for i := range td.def.Columns {
		if td.def.Columns[i].Type.FileStream {
			fsCol = i
			break
		}
	}
	if fsCol < 0 {
		return "", fmt.Errorf("core: table %s has no FILESTREAM column", table)
	}
	t := s.currentTxn()
	guid = newGUIDForImport()
	execErr := func() error {
		if _, err := db.createBlobInTxn(t, guid, srcPath); err != nil {
			return err
		}
		row := make(sqltypes.Row, len(td.def.Columns))
		for name, v := range values {
			idx := td.def.ColumnIndex(name)
			if idx < 0 {
				return fmt.Errorf("core: table %s has no column %q", table, name)
			}
			row[idx] = v
		}
		row[fsCol] = sqltypes.NewBytes([]byte(guid))
		// A FILESTREAM column stores the GUID; the catalog treats it as
		// VARBINARY, so hand it the GUID bytes.
		if err := db.insertRow(t, td, row); err != nil {
			return err
		}
		// Imports are automatically provenance-tracked (the paper's
		// future-work item): what was loaded, from where, into which
		// table, with which metadata.
		_, err := db.recordProvenanceInTxn(t, ProvenanceRecord{
			Entity:   BlobEntity(guid),
			Activity: "import",
			Tool:     "ImportFileStream",
			Params:   describeValues(values),
			Inputs:   "file:" + srcPath,
		})
		return err
	}()
	if err := db.finishAuto(t, execErr); err != nil {
		return "", err
	}
	return guid, nil
}

// OpenBlob opens a FileStream blob for streaming reads.
func (db *Database) OpenBlob(guid string) (*BlobStream, error) {
	s, err := db.blobs.Open(guid)
	if err != nil {
		return nil, err
	}
	return (*BlobStream)(s), nil
}

// TableSizeBytes returns the allocated storage size of a table.
func (db *Database) TableSizeBytes(table string) (int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.table(table)
	if err != nil {
		return 0, err
	}
	if td.heap != nil {
		return td.heap.SizeBytes(), nil
	}
	return td.tree.SizeBytes(), nil
}

// TableUsedBytes returns the payload bytes of a heap table (page-internal
// accounting used by the storage experiments).
func (db *Database) TableUsedBytes(table string) (int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.table(table)
	if err != nil {
		return 0, err
	}
	if td.heap == nil {
		return td.tree.SizeBytes(), nil
	}
	return td.heap.UsedBytes()
}

// ScanTableNoLock iterates every row of a table WITHOUT acquiring the
// structure lock. It exists for table-valued functions that execute
// inside a query (which already holds the lock; re-acquiring could
// deadlock against a waiting DDL). The scan sees the latest committed
// rows. Callers must not run DDL concurrently.
func (db *Database) ScanTableNoLock(table string, fn func(sqltypes.Row) error) error {
	def := db.cat.Get(table)
	if def == nil {
		return fmt.Errorf("core: unknown table %q", table)
	}
	ops, err := db.ScanPartitions(def, 1)
	if err != nil {
		return err
	}
	op := ops[0]
	if err := op.Open(&exec.Context{DOP: 1, Stats: &db.execStats}); err != nil {
		return err
	}
	defer op.Close()
	for {
		row, ok, err := op.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(row); err != nil {
			return err
		}
	}
}

// TableRowCount returns a table's committed row count under a fresh read
// snapshot (in-flight transactions are not counted).
func (db *Database) TableRowCount(table string) (int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, err := db.table(table)
	if err != nil {
		return 0, err
	}
	snap := db.tm.readSnapshot()
	defer db.tm.releaseSnapshot(snap)
	return td.visibleRowCount(snap), nil
}
