package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// vecFuzzColumn is one randomly-generated column of the fuzz schema.
type vecFuzzColumn struct {
	name string
	typ  string // SQL type
	gen  func(r *rand.Rand) string
}

var seqAlphabet = []byte("ACGT")

// nullable wraps a generator with a NULL probability.
func nullable(p float64, gen func(r *rand.Rand) string) func(r *rand.Rand) string {
	return func(r *rand.Rand) string {
		if r.Float64() < p {
			return "NULL"
		}
		return gen(r)
	}
}

// runLength repeats a generator's value for short runs, producing the
// repeated values RLE and dictionary page encodings compress.
func runLength(gen func(r *rand.Rand) string) func(r *rand.Rand) string {
	var cur string
	var left int
	return func(r *rand.Rand) string {
		if left == 0 {
			cur = gen(r)
			left = 1 + r.Intn(8)
		}
		left--
		return cur
	}
}

var vecFuzzWords = []string{"'alpha'", "'beta'", "'gamma'", "'delta'", "'epsilon'", "'zeta'"}

// randomVecSchema builds id BIGINT plus 3-5 random columns covering the
// encodings under test: low-NDV strings (dictionary), run-heavy ints
// (RLE), floats, and 2-bit packable sequences.
func randomVecSchema(r *rand.Rand) []vecFuzzColumn {
	cols := []vecFuzzColumn{{
		name: "id", typ: "BIGINT",
		gen: func(*rand.Rand) string { return "" }, // filled by row counter
	}}
	kinds := []func(i int) vecFuzzColumn{
		func(i int) vecFuzzColumn {
			return vecFuzzColumn{name: fmt.Sprintf("c%d", i), typ: "INT",
				gen: nullable(0.15, runLength(func(r *rand.Rand) string {
					return fmt.Sprintf("%d", r.Intn(20))
				}))}
		},
		func(i int) vecFuzzColumn {
			return vecFuzzColumn{name: fmt.Sprintf("c%d", i), typ: "VARCHAR(16)",
				gen: nullable(0.1, runLength(func(r *rand.Rand) string {
					return vecFuzzWords[r.Intn(len(vecFuzzWords))]
				}))}
		},
		func(i int) vecFuzzColumn {
			return vecFuzzColumn{name: fmt.Sprintf("c%d", i), typ: "FLOAT",
				gen: nullable(0.1, func(r *rand.Rand) string {
					return fmt.Sprintf("%.4f", r.Float64()*100)
				})}
		},
		func(i int) vecFuzzColumn {
			return vecFuzzColumn{name: fmt.Sprintf("c%d", i), typ: "SEQUENCE",
				gen: nullable(0.1, func(r *rand.Rand) string {
					n := 4 + r.Intn(12)
					b := make([]byte, n)
					for j := range b {
						b[j] = seqAlphabet[r.Intn(4)]
					}
					return "'" + string(b) + "'"
				})}
		},
		func(i int) vecFuzzColumn {
			return vecFuzzColumn{name: fmt.Sprintf("c%d", i), typ: "BIGINT",
				gen: nullable(0.2, func(r *rand.Rand) string {
					return fmt.Sprintf("%d", r.Int63n(1<<40)-(1<<39))
				})}
		},
	}
	n := 3 + r.Intn(3)
	for i := 0; i < n; i++ {
		cols = append(cols, kinds[r.Intn(len(kinds))](i))
	}
	return cols
}

// firstOfType returns the name of the first column of the given SQL type
// prefix, or "".
func firstOfType(cols []vecFuzzColumn, typ string) string {
	for _, c := range cols[1:] {
		if strings.HasPrefix(c.typ, typ) {
			return c.name
		}
	}
	return ""
}

// vecFuzzQueries derives the query battery from the schema: every
// vectorized kernel (typed comparisons, dictionary verdicts, packed
// equality, LIKE, IS NULL, Kleene logic, TopN, Limit, projection) plus a
// row-consumer (aggregate) above the batch scan.
type vecFuzzQuery struct {
	sql string
	// countOnly: TOP without ORDER BY returns an arbitrary subset, so only
	// cardinality is comparable across engines.
	countOnly bool
}

func vecFuzzQueries(cols []vecFuzzColumn) []vecFuzzQuery {
	qs := []vecFuzzQuery{
		{sql: `SELECT * FROM t`},
		{sql: `SELECT TOP 7 * FROM t ORDER BY id DESC`},
		{sql: `SELECT TOP 11 * FROM t`, countOnly: true},
		{sql: `SELECT COUNT(*) FROM t`},
		{sql: `SELECT id + 1 FROM t WHERE id > 50`},
		{sql: `SELECT * FROM t WHERE 1 = 1 AND id < 40`},
		{sql: `SELECT * FROM t WHERE 1 = 0`},
	}
	add := func(format string, args ...interface{}) {
		qs = append(qs, vecFuzzQuery{sql: fmt.Sprintf(format, args...)})
	}
	if c := firstOfType(cols, "INT"); c != "" {
		add(`SELECT * FROM t WHERE %s > 5`, c)
		add(`SELECT * FROM t WHERE %s = 3 OR %s IS NULL`, c, c)
		add(`SELECT * FROM t WHERE NOT (%s >= 10)`, c)
		add(`SELECT COUNT(*), SUM(%s) FROM t WHERE %s <> 7`, c, c)
		add(`SELECT TOP 9 * FROM t ORDER BY %s, id`, c)
	}
	if c := firstOfType(cols, "VARCHAR"); c != "" {
		add(`SELECT * FROM t WHERE %s = 'beta'`, c)
		add(`SELECT * FROM t WHERE %s LIKE '%%et%%'`, c)
		add(`SELECT * FROM t WHERE %s >= 'delta' AND id < 120`, c)
		add(`SELECT %s, COUNT(*) FROM t GROUP BY %s`, c, c)
	}
	if c := firstOfType(cols, "FLOAT"); c != "" {
		add(`SELECT * FROM t WHERE %s >= 25.0 AND %s < 75.0`, c, c)
		add(`SELECT TOP 5 * FROM t ORDER BY %s DESC, id`, c)
	}
	if c := firstOfType(cols, "SEQUENCE"); c != "" {
		add(`SELECT * FROM t WHERE %s = 'ACGT'`, c)
		add(`SELECT * FROM t WHERE %s IS NULL`, c)
		add(`SELECT %s FROM t WHERE %s LIKE 'AC%%'`, c, c)
	}
	return qs
}

// renderRows canonicalizes a result as a sorted multiset of row strings,
// so equivalence is order-insensitive (parallel gathers interleave
// nondeterministically on both paths).
func renderRows(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = fmt.Sprintf("%d:%v", v.K, v)
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestVectorizedRowEquivalenceFuzz loads identical random data (random
// schemas, NULLs, dictionary/RLE/packed-friendly distributions) into a
// vectorized and a row-only engine at DOP 1 and DOP 4, and asserts every
// query in the battery returns the same multiset of rows on all four.
func TestVectorizedRowEquivalenceFuzz(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			cols := randomVecSchema(r)

			defs := make([]string, len(cols))
			for i, c := range cols {
				defs[i] = c.name + " " + c.typ
			}
			compression := ""
			if seed%2 == 1 {
				compression = " WITH (DATA_COMPRESSION = PAGE)"
			}
			ddl := fmt.Sprintf("CREATE TABLE t (%s)%s", strings.Join(defs, ", "), compression)

			const nRows = 3000
			var inserts []string
			var sb strings.Builder
			for i := 0; i < nRows; i++ {
				if sb.Len() == 0 {
					sb.WriteString("INSERT INTO t VALUES ")
				} else {
					sb.WriteString(", ")
				}
				sb.WriteString("(")
				for j, c := range cols {
					if j > 0 {
						sb.WriteString(", ")
					}
					if j == 0 {
						fmt.Fprintf(&sb, "%d", i)
					} else {
						sb.WriteString(c.gen(r))
					}
				}
				sb.WriteString(")")
				if (i+1)%200 == 0 {
					inserts = append(inserts, sb.String())
					sb.Reset()
				}
			}
			if sb.Len() > 0 {
				inserts = append(inserts, sb.String())
			}

			type engine struct {
				name string
				db   *Database
			}
			var engines []engine
			for _, cfg := range []struct {
				name string
				opts Options
			}{
				{"vec-dop1", Options{DOP: 1}},
				{"vec-dop4", Options{DOP: 4, ParallelThreshold: 64}},
				{"row-dop1", Options{DOP: 1, DisableVectorized: true}},
				{"row-dop4", Options{DOP: 4, ParallelThreshold: 64, DisableVectorized: true}},
			} {
				db, err := Open(filepath.Join(t.TempDir(), cfg.name), cfg.opts)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { db.Close() })
				mustExec(t, db, ddl)
				for _, ins := range inserts {
					mustExec(t, db, ins)
				}
				engines = append(engines, engine{cfg.name, db})
			}

			for _, q := range vecFuzzQueries(cols) {
				run := func(e engine) []string {
					res, err := e.db.Exec(q.sql)
					if err != nil {
						t.Fatalf("%s: Exec(%q): %v", e.name, q.sql, err)
					}
					return renderRows(res)
				}
				baseline := run(engines[0])
				for _, e := range engines[1:] {
					got := run(e)
					if len(got) != len(baseline) {
						t.Fatalf("%s: %q returned %d rows, %s returned %d",
							e.name, q.sql, len(got), engines[0].name, len(baseline))
					}
					if q.countOnly {
						continue
					}
					for i := range got {
						if got[i] != baseline[i] {
							t.Fatalf("%s: %q row %d = %q, %s has %q",
								e.name, q.sql, i, got[i], engines[0].name, baseline[i])
						}
					}
				}
			}

			// The vectorized engines actually ran the batch path.
			if st := engines[0].db.ExecStats(); st.Scan.Batches == 0 {
				t.Fatal("vectorized engine processed no batches")
			}
			if st := engines[2].db.ExecStats(); st.Scan.Batches != 0 {
				t.Fatal("row-only engine processed batches")
			}
		})
	}
}

// TestVectorizedExplainAndScanStats pins the visible contract: EXPLAIN
// annotates vectorized nodes, and a selective filter over a
// dictionary-encoded page-compressed column decodes dictionary entries,
// not dropped rows.
func TestVectorizedExplainAndScanStats(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "db"), Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE reads (id BIGINT, flow VARCHAR(12), qual INT) WITH (DATA_COMPRESSION = PAGE)`)
	var sb strings.Builder
	flows := []string{"run_a", "run_b", "run_c", "run_d"}
	const n = 4000
	for i := 0; i < n; i++ {
		if sb.Len() == 0 {
			sb.WriteString("INSERT INTO reads VALUES ")
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, '%s', %d)", i, flows[i%len(flows)], i%40)
		if (i+1)%250 == 0 {
			mustExec(t, db, sb.String())
			sb.Reset()
		}
	}

	res := mustExec(t, db, `EXPLAIN SELECT id FROM reads WHERE flow = 'run_b'`)
	if !strings.Contains(res.Plan, "vectorized") {
		t.Fatalf("EXPLAIN missing vectorized annotation:\n%s", res.Plan)
	}

	before := db.ExecStats()
	out := mustExec(t, db, `SELECT COUNT(*) FROM reads WHERE flow = 'run_b'`)
	if got := out.Rows[0][0].I; got != int64(n/len(flows)) {
		t.Fatalf("count = %d, want %d", got, n/len(flows))
	}
	d := db.ExecStats().Sub(before)
	if d.Scan.Batches == 0 || d.Scan.Rows == 0 {
		t.Fatalf("no vectorized scan activity: %+v", d.Scan)
	}
	// The flow column is dictionary-encoded on sealed pages: it costs
	// O(dictionary entries) per page, never a per-row decode. The row path
	// decodes every cell (3·rows); here only the two non-dictionary
	// columns plus the in-memory tail decode per-cell, so total cell
	// decodes must stay well under 3·rows.
	if d.Scan.ValuesDecoded+d.Scan.DictEntriesDecoded >= d.Scan.Rows*5/2 {
		t.Fatalf("decoded %d values + %d dict entries for %d scanned rows — the dictionary column was decompressed per-row",
			d.Scan.ValuesDecoded, d.Scan.DictEntriesDecoded, d.Scan.Rows)
	}
	if d.Scan.DictEntriesDecoded == 0 {
		t.Fatal("no dictionary entries decoded — pages were not dictionary-encoded")
	}

	// The escape hatch: EXPLAIN shows no vectorized nodes when disabled.
	db2, err := Open(filepath.Join(t.TempDir(), "db2"), Options{DOP: 1, DisableVectorized: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	mustExec(t, db2, `CREATE TABLE reads (id BIGINT, flow VARCHAR(12))`)
	mustExec(t, db2, `INSERT INTO reads VALUES (1, 'x')`)
	res = mustExec(t, db2, `EXPLAIN SELECT id FROM reads WHERE flow = 'x'`)
	if strings.Contains(res.Plan, "vectorized") {
		t.Fatalf("DisableVectorized plan still vectorized:\n%s", res.Plan)
	}
}
