package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

func TestProvenanceRecordAndQuery(t *testing.T) {
	db := openTestDB(t)
	if _, err := db.RecordProvenance(ProvenanceRecord{
		Entity:   TableEntity("Read"),
		Activity: "load",
		Tool:     "seqgen",
		Params:   "reads=1000 seed=42",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RecordProvenance(ProvenanceRecord{
		Entity:   TableEntity("Alignment"),
		Activity: "align",
		Tool:     "align.Aligner",
		Params:   "seed=20 maxMismatches=2",
		Inputs:   TableEntity("Read") + ", table:refseq",
	}); err != nil {
		t.Fatal(err)
	}
	// Direct lineage only.
	recs, err := db.Provenance(TableEntity("Alignment"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Activity != "align" {
		t.Fatalf("direct = %+v", recs)
	}
	// Transitive lineage reaches the load step.
	recs, err = db.Provenance(TableEntity("Alignment"), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("transitive = %+v", recs)
	}
	if recs[0].Activity != "load" || recs[1].Activity != "align" {
		t.Errorf("lineage order = %+v", recs)
	}
	if recs[0].At == 0 {
		t.Error("timestamp not filled")
	}
}

func TestProvenanceIsPlainSQL(t *testing.T) {
	// The provenance table is an ordinary table: queryable, joinable.
	db := openTestDB(t)
	db.RecordProvenance(ProvenanceRecord{
		Entity: "table:x", Activity: "load", Tool: "t1",
	})
	res := mustExec(t, db, `SELECT entity, activity, tool FROM _provenance`)
	if len(res.Rows) != 1 || res.Rows[0][1].S != "load" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestImportFileStreamAutoProvenance(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE ShortReadFiles (
	    guid UNIQUEIDENTIFIER, sample INT, lane INT,
	    reads VARBINARY(MAX) FILESTREAM)`)
	src := filepath.Join(t.TempDir(), "lane.fastq")
	os.WriteFile(src, []byte("@r\nAC\n+\nII\n"), 0o644)
	guid, err := db.ImportFileStream("ShortReadFiles", src, map[string]sqltypes.Value{
		"sample": sqltypes.NewInt(855), "lane": sqltypes.NewInt(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := db.Provenance(BlobEntity(guid), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("recs = %+v", recs)
	}
	r := recs[0]
	if r.Activity != "import" || !strings.Contains(r.Params, "sample=855") ||
		!strings.Contains(r.Inputs, "file:") {
		t.Errorf("auto record = %+v", r)
	}
}

func TestProvenanceRollsBackWithTransaction(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE ShortReadFiles (
	    guid UNIQUEIDENTIFIER, sample INT, lane INT,
	    reads VARBINARY(MAX) FILESTREAM)`)
	src := filepath.Join(t.TempDir(), "lane.fastq")
	os.WriteFile(src, []byte("@r\nAC\n+\nII\n"), 0o644)
	mustExec(t, db, `BEGIN TRAN`)
	guid, err := db.ImportFileStream("ShortReadFiles", src, map[string]sqltypes.Value{
		"sample": sqltypes.NewInt(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `ROLLBACK`)
	recs, err := db.Provenance(BlobEntity(guid), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("provenance of rolled-back import survived: %+v", recs)
	}
}

func TestProvenanceSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir, Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	db.RecordProvenance(ProvenanceRecord{Entity: "table:x", Activity: "load"})
	db.Close() // crash: no checkpoint, WAL replays

	db2, err := Open(dir, Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	recs, err := db2.Provenance("table:x", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("provenance lost across restart: %+v", recs)
	}
}

func TestProvenanceUnknownEntityEmpty(t *testing.T) {
	db := openTestDB(t)
	recs, err := db.Provenance("table:nothing", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("recs = %+v", recs)
	}
}
