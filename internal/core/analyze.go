package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
	"repro/internal/stats"
	"repro/internal/wal"
)

// runAnalyze executes ANALYZE [TABLE t]: a sampled parallel scan of each
// target table (reusing the partitioned scan machinery, one collector
// per partition) whose merged per-column statistics — row count, null
// fraction, min/max, HyperLogLog NDV, equi-depth histogram and
// most-common values — persist in the stats store and are WAL-logged so
// they survive a crash before the next file write.
//
// Statistics are advisory, so the long collection scans run under the
// SHARED structure lock and an MVCC read snapshot: concurrent SELECTs
// and writers both keep flowing, and every partition of the scan sees
// the same committed version of each table. Only the short WAL-log +
// persist phase takes the exclusive lock.
func (db *Database) runAnalyze(s *Session, a *sqlparse.Analyze) (*Result, error) {
	if s.txn != nil {
		return nil, fmt.Errorf("core: ANALYZE inside a transaction is not supported")
	}
	db.mu.RLock()
	var defs []*catalog.Table
	if a.Table != "" {
		def := db.cat.Get(a.Table)
		if def == nil {
			db.mu.RUnlock()
			return nil, fmt.Errorf("core: unknown table %q", a.Table)
		}
		defs = append(defs, def)
	} else {
		names := db.cat.List()
		sort.Strings(names)
		for _, n := range names {
			defs = append(defs, db.cat.Get(n))
		}
	}
	snap := db.tm.readSnapshot()
	collected := make([]*stats.TableStats, 0, len(defs))
	for _, def := range defs {
		ts, err := db.analyzeTable(def, snap)
		if err != nil {
			db.tm.releaseSnapshot(snap)
			db.mu.RUnlock()
			return nil, err
		}
		collected = append(collected, ts)
	}
	db.tm.releaseSnapshot(snap)
	db.mu.RUnlock()

	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.newTxn(true)
	res := &Result{Cols: []string{"table", "rows", "sampled", "columns"}}
	execErr := func() error {
		for _, ts := range collected {
			// A table dropped between the phases loses its stats with it.
			if db.cat.ByID(ts.TableID) == nil {
				continue
			}
			data, err := json.Marshal(ts)
			if err != nil {
				return err
			}
			if err := db.wal.Append(wal.Record{
				Type: wal.RecStats, Txn: t.id, Table: ts.TableID, Data: data,
			}); err != nil {
				return err
			}
			t.logged = true // the image needs a commit record to replay
			if err := db.tstats.Put(ts); err != nil {
				return err
			}
			res.Rows = append(res.Rows, sqltypes.Row{
				sqltypes.NewString(ts.Table),
				sqltypes.NewInt(ts.RowCount),
				sqltypes.NewInt(ts.SampleRows),
				sqltypes.NewInt(int64(len(ts.Columns))),
			})
			res.RowsAffected += ts.RowCount
		}
		return nil
	}()
	if err := db.finishAuto(t, execErr); err != nil {
		return nil, err
	}
	return res, nil
}

// analyzeTable scans one table under snap with up to DOP partition
// collectors and merges them into the table's statistics.
func (db *Database) analyzeTable(def *catalog.Table, snap *Snapshot) (*stats.TableStats, error) {
	td := db.tables[def.ID]
	if td == nil {
		return nil, fmt.Errorf("core: no storage for table %s", def.Name)
	}
	// ANALYZE also completes the heap's zone maps: pages sealed by an
	// earlier process lack in-memory min/max entries until someone decodes
	// them, and ANALYZE is about to read every page anyway.
	if td.heap != nil {
		if err := td.heap.FillZoneMaps(); err != nil {
			return nil, err
		}
	}
	modCount := td.modCount.Load()
	parts := db.dop
	if parts < 1 {
		parts = 1
	}
	ops, err := db.ScanPartitions(def, parts)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(def.Columns))
	for i := range def.Columns {
		names[i] = def.Columns[i].Name
	}
	collectors := make([]*stats.Collector, len(ops))
	errs := make([]error, len(ops))
	var wg sync.WaitGroup
	for i := range ops {
		wg.Add(1)
		go func(i int, op exec.Operator) {
			defer wg.Done()
			// Deterministic per-partition seed: ANALYZE output should not
			// wobble between runs over unchanged data.
			c := stats.NewCollector(names, stats.DefaultSampleSize, int64(i+1)*104729)
			collectors[i] = c
			if err := op.Open(&exec.Context{DOP: 1, Stats: &db.execStats, Snapshot: snap}); err != nil {
				errs[i] = err
				return
			}
			defer op.Close()
			for {
				row, ok, err := op.Next()
				if err != nil {
					errs[i] = err
					return
				}
				if !ok {
					return
				}
				c.Add(row)
			}
		}(i, ops[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := collectors[0]
	for _, c := range collectors[1:] {
		merged.Merge(c)
	}
	return merged.Finalize(def.ID, def.Name, modCount, stats.DefaultHistogramBuckets, stats.DefaultMCVs), nil
}
