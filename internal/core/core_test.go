package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqltypes"
)

func openTestDB(t *testing.T) *Database {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "db"), Options{DOP: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INT, b VARCHAR(20))`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, NULL)`)
	res := mustExec(t, db, `SELECT a, b FROM t WHERE a >= 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Cols[0] != "a" || res.Cols[1] != "b" {
		t.Errorf("cols = %v", res.Cols)
	}
	if res.Rows[1][1].K != sqltypes.KindNull {
		t.Errorf("NULL round trip failed: %v", res.Rows[1])
	}
}

func TestInsertColumnList(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INT, b VARCHAR(20), c FLOAT)`)
	mustExec(t, db, `INSERT INTO t (c, a) VALUES (2.5, 7)`)
	res := mustExec(t, db, `SELECT a, b, c FROM t`)
	r := res.Rows[0]
	if r[0].I != 7 || !r[1].IsNull() || r[2].F != 2.5 {
		t.Errorf("row = %v", r)
	}
}

func TestInsertErrors(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a INT NOT NULL, b INT)`)
	if _, err := db.Exec(`INSERT INTO t VALUES (NULL, 1)`); err == nil {
		t.Error("NULL into NOT NULL accepted")
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1)`); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := db.Exec(`INSERT INTO nope VALUES (1)`); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.Exec(`INSERT INTO t (z) VALUES (1)`); err == nil {
		t.Error("unknown column accepted")
	}
	// Failed statements must not leave partial rows (statement rollback).
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 1), (NULL, 2)`); err == nil {
		t.Error("second bad row accepted")
	}
	res := mustExec(t, db, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != 0 {
		t.Errorf("partial insert visible: %v", res.Rows)
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE sales (region VARCHAR(10), amount INT)`)
	mustExec(t, db, `INSERT INTO sales VALUES ('e', 10), ('e', 20), ('w', 5), ('w', NULL)`)
	res := mustExec(t, db, `
	  SELECT region, COUNT(*), COUNT(amount), SUM(amount), MIN(amount), MAX(amount), AVG(amount)
	    FROM sales GROUP BY region ORDER BY region`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	e := res.Rows[0]
	if e[0].S != "e" || e[1].I != 2 || e[2].I != 2 || e[3].I != 30 || e[4].I != 10 || e[5].I != 20 || e[6].F != 15 {
		t.Errorf("east = %v", e)
	}
	w := res.Rows[1]
	if w[1].I != 2 || w[2].I != 1 || w[3].I != 5 {
		t.Errorf("west = %v", w)
	}
}

func TestHavingAndOrderByAggregate(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (g VARCHAR(5), v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES ('a',1),('a',2),('b',1),('c',1),('c',2),('c',3)`)
	res := mustExec(t, db, `
	  SELECT g, COUNT(*) FROM t GROUP BY g HAVING COUNT(*) >= 2 ORDER BY COUNT(*) DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "c" || res.Rows[0][1].I != 3 {
		t.Errorf("first = %v", res.Rows[0])
	}
	if res.Rows[1][0].S != "a" {
		t.Errorf("second = %v", res.Rows[1])
	}
}

func TestQuery1ShapeRowNumberOverCountDesc(t *testing.T) {
	// The paper's Query 1: binning unique short reads with ROW_NUMBER.
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE [Read] (r_s_id INT, short_read_seq VARCHAR(100))`)
	mustExec(t, db, `INSERT INTO [Read] VALUES
	  (1,'ACGT'), (1,'ACGT'), (1,'ACGT'),
	  (1,'GGGG'), (1,'GGGG'),
	  (1,'TTTT'),
	  (1,'ACNT'),
	  (2,'CCCC')`)
	res := mustExec(t, db, `
	  SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC) AS rank,
	         COUNT(*) AS freq, short_read_seq
	    FROM [Read]
	   WHERE r_s_id = 1 AND CHARINDEX('N', short_read_seq) = 0
	   GROUP BY short_read_seq`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	want := []struct {
		rank, freq int64
		seq        string
	}{{1, 3, "ACGT"}, {2, 2, "GGGG"}, {3, 1, "TTTT"}}
	for i, w := range want {
		r := res.Rows[i]
		if r[0].I != w.rank || r[1].I != w.freq || r[2].S != w.seq {
			t.Errorf("row %d = %v, want %+v", i, r, w)
		}
	}
}

func TestJoinHash(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE a (id INT, x VARCHAR(5))`)
	mustExec(t, db, `CREATE TABLE b (id INT, y VARCHAR(5))`)
	mustExec(t, db, `INSERT INTO a VALUES (1,'a1'), (2,'a2'), (3,'a3')`)
	mustExec(t, db, `INSERT INTO b VALUES (2,'b2'), (3,'b3'), (3,'b3x'), (4,'b4')`)
	res := mustExec(t, db, `
	  SELECT a.x, b.y FROM a JOIN b ON a.id = b.id ORDER BY a.x, b.y`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "a2" || res.Rows[0][1].S != "b2" {
		t.Errorf("first = %v", res.Rows[0])
	}
}

func TestInsertSelect(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE src (g VARCHAR(5), v INT)`)
	mustExec(t, db, `CREATE TABLE agg (g VARCHAR(5), total INT, cnt INT)`)
	mustExec(t, db, `INSERT INTO src VALUES ('a',1),('a',2),('b',5)`)
	res := mustExec(t, db, `
	  INSERT INTO agg SELECT g, SUM(v), COUNT(*) FROM src GROUP BY g`)
	if res.RowsAffected != 2 {
		t.Errorf("affected = %d", res.RowsAffected)
	}
	out := mustExec(t, db, `SELECT g, total, cnt FROM agg ORDER BY g`)
	if out.Rows[0][1].I != 3 || out.Rows[1][1].I != 5 {
		t.Errorf("agg rows = %v", out.Rows)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (g VARCHAR(5), v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES ('a',1),('a',2),('b',5)`)
	res := mustExec(t, db, `
	  SELECT g, total FROM (SELECT g, SUM(v) AS total FROM t GROUP BY g) s
	   WHERE total > 2 ORDER BY g`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "a" || res.Rows[0][1].I != 3 {
		t.Errorf("first = %v", res.Rows[0])
	}
}

func TestTopAndOrderBy(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (v INT)`)
	for i := 0; i < 20; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, (i*7)%20))
	}
	res := mustExec(t, db, `SELECT TOP 3 v FROM t ORDER BY v DESC`)
	if len(res.Rows) != 3 || res.Rows[0][0].I != 19 || res.Rows[2][0].I != 17 {
		t.Errorf("top rows = %v", res.Rows)
	}
	res2 := mustExec(t, db, `SELECT TOP 5 v FROM t`)
	if len(res2.Rows) != 5 {
		t.Errorf("limit rows = %d", len(res2.Rows))
	}
}

func TestScalarFunctionsInSQL(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (s VARCHAR(50))`)
	mustExec(t, db, `INSERT INTO t VALUES ('GATTACA')`)
	res := mustExec(t, db, `
	  SELECT LEN(s), UPPER(s), SUBSTRING(s, 2, 3), CHARINDEX('TTA', s), DATALENGTH(s)
	    FROM t`)
	r := res.Rows[0]
	if r[0].I != 7 || r[1].S != "GATTACA" || r[2].S != "ATT" || r[3].I != 3 || r[4].I != 7 {
		t.Errorf("row = %v", r)
	}
}

func TestUserDefinedScalar(t *testing.T) {
	db := openTestDB(t)
	db.RegisterScalar("revcomp", func(args []sqltypes.Value) (sqltypes.Value, error) {
		if len(args) != 1 || args[0].IsNull() {
			return sqltypes.Null, nil
		}
		s := []byte(args[0].AsString())
		out := make([]byte, len(s))
		comp := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C'}
		for i := range s {
			out[len(s)-1-i] = comp[s[i]]
		}
		return sqltypes.NewString(string(out)), nil
	})
	mustExec(t, db, `CREATE TABLE t (s VARCHAR(10))`)
	mustExec(t, db, `INSERT INTO t VALUES ('AACG')`)
	res := mustExec(t, db, `SELECT revcomp(s) FROM t`)
	if res.Rows[0][0].S != "CGTT" {
		t.Errorf("revcomp = %v", res.Rows[0])
	}
}

// sumSquares is a tiny UDA used to prove UDA registration + parallel merge.
type sumSquares struct{ total int64 }

func (s *sumSquares) Add(args []sqltypes.Value) error {
	if len(args) != 1 || args[0].IsNull() {
		return nil
	}
	v, err := args[0].AsInt()
	if err != nil {
		return err
	}
	s.total += v * v
	return nil
}
func (s *sumSquares) Merge(o exec.AggState) error {
	s.total += o.(*sumSquares).total
	return nil
}
func (s *sumSquares) Result() (sqltypes.Value, error) { return sqltypes.NewInt(s.total), nil }

func TestUserDefinedAggregate(t *testing.T) {
	db := openTestDB(t)
	db.RegisterAggregate("sumsq", func() exec.AggState { return &sumSquares{} })
	mustExec(t, db, `CREATE TABLE t (g VARCHAR(5), v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES ('a',1),('a',2),('b',3)`)
	res := mustExec(t, db, `SELECT g, sumsq(v) FROM t GROUP BY g ORDER BY g`)
	if res.Rows[0][1].I != 5 || res.Rows[1][1].I != 9 {
		t.Errorf("rows = %v", res.Rows)
	}
}

// rangeTVF yields rows 0..n-1; a minimal pull-model TVF.
type rangeTVF struct{}

func (rangeTVF) Schema(args []sqltypes.Value) ([]catalog.Column, error) {
	it, _ := catalog.ParseType("INT")
	return []catalog.Column{{Name: "n", Type: it}}, nil
}

func (rangeTVF) Iterator(args []sqltypes.Value) (exec.RowIterator, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("range takes 1 arg")
	}
	n, err := args[0].AsInt()
	if err != nil {
		return nil, err
	}
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt(int64(i))}
	}
	return &exec.SliceIterator{Rows: rows}, nil
}

func TestTVFInFrom(t *testing.T) {
	db := openTestDB(t)
	db.RegisterTVF("range", rangeTVF{})
	res := mustExec(t, db, `SELECT n FROM range(4) WHERE n > 0`)
	if len(res.Rows) != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
	agg := mustExec(t, db, `SELECT COUNT(*), SUM(n) FROM range(10)`)
	if agg.Rows[0][0].I != 10 || agg.Rows[0][1].I != 45 {
		t.Errorf("agg = %v", agg.Rows)
	}
}

func TestCrossApplyTVF(t *testing.T) {
	db := openTestDB(t)
	db.RegisterTVF("range", rangeTVF{})
	mustExec(t, db, `CREATE TABLE t (id INT, cnt INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 2), (2, 0), (3, 3)`)
	res := mustExec(t, db, `
	  SELECT id, n FROM t CROSS APPLY range(cnt) r ORDER BY id, n`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].I != 1 || res.Rows[0][1].I != 0 {
		t.Errorf("first = %v", res.Rows[0])
	}
	if res.Rows[4][0].I != 3 || res.Rows[4][1].I != 2 {
		t.Errorf("last = %v", res.Rows[4])
	}
}

func TestClusteredTableAndMergeJoin(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE reads (r_id BIGINT PRIMARY KEY CLUSTERED, seq VARCHAR(50))`)
	mustExec(t, db, `CREATE TABLE aligns (a_r_id BIGINT PRIMARY KEY CLUSTERED, pos INT)`)
	var readRows, alignRows []sqltypes.Row
	for i := 0; i < 2000; i++ {
		readRows = append(readRows, sqltypes.Row{
			sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("SEQ%d", i)),
		})
		if i%2 == 0 {
			alignRows = append(alignRows, sqltypes.Row{
				sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i * 10)),
			})
		}
	}
	if err := db.InsertRows("reads", readRows); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("aligns", alignRows); err != nil {
		t.Fatal(err)
	}
	// The plan must use a merge join on the clustered keys.
	ex := mustExec(t, db, `EXPLAIN SELECT seq, pos FROM aligns JOIN reads ON a_r_id = r_id`)
	if !strings.Contains(ex.Plan, "Merge Join") {
		t.Errorf("expected merge join plan, got:\n%s", ex.Plan)
	}
	res := mustExec(t, db, `SELECT COUNT(*) FROM aligns JOIN reads ON a_r_id = r_id`)
	if res.Rows[0][0].I != 1000 {
		t.Errorf("join count = %v", res.Rows)
	}
	// Results match a forced hash join (heap copy of the same data).
	mustExec(t, db, `CREATE TABLE reads_h (r_id BIGINT, seq VARCHAR(50))`)
	mustExec(t, db, `INSERT INTO reads_h SELECT r_id, seq FROM reads`)
	res2 := mustExec(t, db, `SELECT COUNT(*) FROM aligns JOIN reads_h ON a_r_id = r_id`)
	if res2.Rows[0][0].I != 1000 {
		t.Errorf("hash join count = %v", res2.Rows)
	}
}

func TestPrimaryKeyDuplicateRejected(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY CLUSTERED, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10)`)
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 20)`); err == nil {
		t.Error("duplicate PK accepted")
	}
	// The failed autocommit statement must roll back cleanly.
	res := mustExec(t, db, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != 1 {
		t.Errorf("count = %v", res.Rows)
	}
}

func TestExplicitTransactionCommitRollback(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (v INT)`)
	mustExec(t, db, `BEGIN TRANSACTION`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	mustExec(t, db, `INSERT INTO t VALUES (2)`)
	mustExec(t, db, `COMMIT`)
	mustExec(t, db, `BEGIN TRANSACTION`)
	mustExec(t, db, `INSERT INTO t VALUES (3)`)
	mustExec(t, db, `ROLLBACK`)
	res := mustExec(t, db, `SELECT COUNT(*), MAX(v) FROM t`)
	if res.Rows[0][0].I != 2 || res.Rows[0][1].I != 2 {
		t.Errorf("after rollback: %v", res.Rows)
	}
}

func TestTransactionRollbackClusteredAndBlob(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY CLUSTERED, v INT)`)
	mustExec(t, db, `CREATE TABLE files (guid UNIQUEIDENTIFIER, reads VARBINARY(MAX) FILESTREAM)`)
	src := filepath.Join(t.TempDir(), "in.fastq")
	os.WriteFile(src, []byte("@r\nAC\n+\nII\n"), 0o644)

	mustExec(t, db, `BEGIN TRAN`)
	mustExec(t, db, `INSERT INTO t VALUES (5, 50)`)
	guid, err := db.ImportFileStream("files", src, map[string]sqltypes.Value{
		"guid": sqltypes.NewString("meta-guid"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !db.Blobs().Exists(guid) {
		t.Fatal("blob missing before rollback")
	}
	mustExec(t, db, `ROLLBACK`)
	if db.Blobs().Exists(guid) {
		t.Error("blob survived rollback")
	}
	res := mustExec(t, db, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != 0 {
		t.Errorf("clustered insert survived rollback: %v", res.Rows)
	}
}

func TestCrashRecoveryReplaysWAL(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir, Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE h (v INT)`)
	mustExec(t, db, `CREATE TABLE c (id INT PRIMARY KEY CLUSTERED, v INT)`)
	for i := 0; i < 500; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO h VALUES (%d)`, i))
		mustExec(t, db, fmt.Sprintf(`INSERT INTO c VALUES (%d, %d)`, i, i*2))
	}
	// Simulate a crash: close WITHOUT checkpoint. Data files hold only
	// what checkpoints persisted; the WAL holds everything.
	db.Close()

	db2, err := Open(dir, Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res := mustExec(t, db2, `SELECT COUNT(*), SUM(v) FROM h`)
	if res.Rows[0][0].I != 500 || res.Rows[0][1].I != 124750 {
		t.Errorf("heap after recovery: %v", res.Rows)
	}
	res2 := mustExec(t, db2, `SELECT COUNT(*), SUM(v) FROM c`)
	if res2.Rows[0][0].I != 500 || res2.Rows[0][1].I != 249500 {
		t.Errorf("clustered after recovery: %v", res2.Rows)
	}
}

func TestCrashRecoveryDiscardsUncommitted(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir, Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE c (id INT PRIMARY KEY CLUSTERED, v INT)`)
	mustExec(t, db, `INSERT INTO c VALUES (1, 1)`)
	mustExec(t, db, `BEGIN TRAN`)
	mustExec(t, db, `INSERT INTO c VALUES (2, 2)`)
	// Crash with the transaction open (no COMMIT record): flush the WAL
	// via Close, which does not write a commit for the open txn.
	db.Close()

	db2, err := Open(dir, Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res := mustExec(t, db2, `SELECT COUNT(*) FROM c`)
	if res.Rows[0][0].I != 1 {
		t.Errorf("uncommitted row visible after recovery: %v", res.Rows)
	}
}

func TestCheckpointStatementAndReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, _ := Open(dir, Options{DOP: 1})
	mustExec(t, db, `CREATE TABLE t (v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (2)`)
	mustExec(t, db, `CHECKPOINT`)
	db.Close()
	db2, err := Open(dir, Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res := mustExec(t, db2, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != 2 {
		t.Errorf("count = %v", res.Rows)
	}
}

func TestSequenceUDTColumn(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE r (id INT, seq SEQUENCE)`)
	mustExec(t, db, `INSERT INTO r VALUES (1, 'ACGTNACGT')`)
	res := mustExec(t, db, `SELECT seq, LEN(seq) FROM r`)
	if res.Rows[0][0].S != "ACGTNACGT" || res.Rows[0][1].I != 9 {
		t.Errorf("sequence round trip: %v", res.Rows)
	}
	// Invalid symbols rejected at insert.
	if _, err := db.Exec(`INSERT INTO r VALUES (2, 'ACGU')`); err == nil {
		t.Error("invalid sequence accepted")
	}
}

func TestFileStreamDualAccess(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE ShortReadFiles (
	  guid UNIQUEIDENTIFIER, sample INT, lane INT, reads VARBINARY(MAX) FILESTREAM)`)
	src := filepath.Join(t.TempDir(), "lane1.fastq")
	content := "@r1\nACGT\n+\nIIII\n"
	os.WriteFile(src, []byte(content), 0o644)
	guid, err := db.ImportFileStream("ShortReadFiles", src, map[string]sqltypes.Value{
		"guid":   sqltypes.NewString("ignored"), // will be in metadata column
		"sample": sqltypes.NewInt(855),
		"lane":   sqltypes.NewInt(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// SQL metadata access, including the PathName/DATALENGTH equivalents.
	res := mustExec(t, db, `SELECT sample, lane, FilePathName(reads), FileDataLength(reads) FROM ShortReadFiles`)
	r := res.Rows[0]
	if r[0].I != 855 || r[1].I != 1 {
		t.Errorf("metadata = %v", r)
	}
	if r[3].I != int64(len(content)) {
		t.Errorf("FileDataLength = %v", r[3])
	}
	// External (file API) access through the path, as the paper's hybrid
	// design requires.
	data, err := os.ReadFile(r[2].S)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != content {
		t.Errorf("external read = %q", data)
	}
	// Engine streaming access.
	st, err := db.OpenBlob(guid)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	buf := make([]byte, 4)
	st.GetBytes(1, buf)
	if string(buf) != "r1\nA" {
		t.Errorf("GetBytes = %q", buf)
	}
}

func TestDropTable(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	mustExec(t, db, `DROP TABLE t`)
	if _, err := db.Exec(`SELECT * FROM t`); err == nil {
		t.Error("dropped table still queryable")
	}
	// Name can be reused.
	mustExec(t, db, `CREATE TABLE t (s VARCHAR(5))`)
	res := mustExec(t, db, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != 0 {
		t.Errorf("recreated table not empty: %v", res.Rows)
	}
}

func TestExplainParallelAggregate(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE big (g VARCHAR(10), v INT)`)
	var rows []sqltypes.Row
	for i := 0; i < 20000; i++ {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewString(fmt.Sprintf("g%d", i%100)),
			sqltypes.NewInt(int64(i)),
		})
	}
	if err := db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	ex := mustExec(t, db, `EXPLAIN SELECT g, COUNT(*) FROM big GROUP BY g`)
	if !strings.Contains(ex.Plan, "Parallelism (Gather Streams)") {
		t.Errorf("expected parallel plan, got:\n%s", ex.Plan)
	}
	// And it actually runs correctly in parallel.
	res := mustExec(t, db, `SELECT COUNT(*) FROM (SELECT g, COUNT(*) c FROM big GROUP BY g) s`)
	if res.Rows[0][0].I != 100 {
		t.Errorf("groups = %v", res.Rows)
	}
	res2 := mustExec(t, db, `SELECT SUM(c) FROM (SELECT g, COUNT(*) c FROM big GROUP BY g) s`)
	if res2.Rows[0][0].I != 20000 {
		t.Errorf("total = %v", res2.Rows)
	}
}

func TestParallelMatchesSerialOnLargeScan(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE big (v INT)`)
	var rows []sqltypes.Row
	for i := 0; i < 30000; i++ {
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i))})
	}
	if err := db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	parallel := mustExec(t, db, `SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM big`)
	db.SetDOP(1)
	serial := mustExec(t, db, `SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM big`)
	for i := range parallel.Rows[0] {
		if sqltypes.Compare(parallel.Rows[0][i], serial.Rows[0][i]) != 0 {
			t.Errorf("parallel %v != serial %v", parallel.Rows[0], serial.Rows[0])
		}
	}
}

func TestLikeAndIsNull(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (name VARCHAR(20))`)
	mustExec(t, db, `INSERT INTO t VALUES ('chr1'), ('chr2'), ('scaffold_1'), (NULL)`)
	res := mustExec(t, db, `SELECT COUNT(*) FROM t WHERE name LIKE 'chr%'`)
	if res.Rows[0][0].I != 2 {
		t.Errorf("LIKE count = %v", res.Rows)
	}
	res2 := mustExec(t, db, `SELECT COUNT(*) FROM t WHERE name IS NULL`)
	if res2.Rows[0][0].I != 1 {
		t.Errorf("IS NULL count = %v", res2.Rows)
	}
	res3 := mustExec(t, db, `SELECT COUNT(*) FROM t WHERE name NOT LIKE 'chr%' AND name IS NOT NULL`)
	if res3.Rows[0][0].I != 1 {
		t.Errorf("NOT LIKE count = %v", res3.Rows)
	}
}

func TestExecScript(t *testing.T) {
	db := openTestDB(t)
	res, err := db.ExecScript(`
	  CREATE TABLE t (v INT);
	  INSERT INTO t VALUES (1), (2), (3);
	  SELECT SUM(v) FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 6 {
		t.Errorf("script result = %v", res.Rows)
	}
	// A failing later statement surfaces its error.
	if _, err := db.ExecScript(`SELECT 1; SELECT * FROM nope;`); err == nil {
		t.Error("script error swallowed")
	}
}

func TestExplainInsertSelect(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE src (v INT)`)
	mustExec(t, db, `CREATE TABLE dst (v INT)`)
	res := mustExec(t, db, `EXPLAIN INSERT INTO dst SELECT v FROM src`)
	if !strings.Contains(res.Plan, "Table Scan") {
		t.Errorf("plan = %s", res.Plan)
	}
	if _, err := db.Exec(`EXPLAIN CHECKPOINT`); err == nil {
		t.Error("EXPLAIN of non-query accepted")
	}
	// EXPLAIN must not execute the insert.
	cnt := mustExec(t, db, `SELECT COUNT(*) FROM dst`)
	if cnt.Rows[0][0].I != 0 {
		t.Error("EXPLAIN executed the INSERT")
	}
}

func TestSetDOPAffectsPlans(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE big (v INT)`)
	var rows []sqltypes.Row
	for i := 0; i < 20000; i++ {
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i))})
	}
	if err := db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	db.SetDOP(1)
	p1 := mustExec(t, db, `EXPLAIN SELECT COUNT(*) FROM big`)
	if strings.Contains(p1.Plan, "Parallelism") {
		t.Errorf("DOP 1 plan parallel:\n%s", p1.Plan)
	}
	db.SetDOP(2)
	p2 := mustExec(t, db, `EXPLAIN SELECT COUNT(*) FROM big`)
	if !strings.Contains(p2.Plan, "DOP 2") {
		t.Errorf("DOP 2 plan not parallel:\n%s", p2.Plan)
	}
}

func TestTableAccessors(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (2)`)
	if n, err := db.TableRowCount("t"); err != nil || n != 2 {
		t.Errorf("TableRowCount = %d, %v", n, err)
	}
	if _, err := db.TableRowCount("nope"); err == nil {
		t.Error("unknown table accepted")
	}
	mustExec(t, db, `CHECKPOINT`)
	sz, err := db.TableSizeBytes("t")
	if err != nil || sz <= 0 {
		t.Errorf("TableSizeBytes = %d, %v", sz, err)
	}
	used, err := db.TableUsedBytes("t")
	if err != nil || used <= 0 || used > sz {
		t.Errorf("TableUsedBytes = %d (alloc %d), %v", used, sz, err)
	}
	// ScanTableNoLock sees all rows.
	n := 0
	if err := db.ScanTableNoLock("t", func(sqltypes.Row) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("ScanTableNoLock saw %d rows", n)
	}
}

func TestPlanProviderInterface(t *testing.T) {
	// Compile-time check plus a smoke call of every Provider method.
	var _ plan.Provider = (*Database)(nil)
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY CLUSTERED, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 1), (100, 2)`)
	tab := db.Table("t")
	if tab == nil {
		t.Fatal("Table() nil")
	}
	if n := db.RowCountEstimate(tab); n != 2 {
		t.Errorf("estimate = %d", n)
	}
	ranges, err := db.KeyRanges(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 2 {
		t.Errorf("ranges = %v", ranges)
	}
	ops, err := db.ScanPartitions(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, op := range ops {
		rows, err := exec.Run(&exec.Context{}, op)
		if err != nil {
			t.Fatal(err)
		}
		total += len(rows)
	}
	if total != 2 {
		t.Errorf("partitioned scan saw %d rows", total)
	}
}
