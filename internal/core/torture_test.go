package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/fault"
)

// Crash-torture harness: a deterministic multi-session workload runs
// against a fault injector, a crash rule pulls the plug at failpoint k,
// the directory is reopened WITHOUT the injector, and recovery must
// restore exactly the promised state. Sweeping k across every failpoint
// of the workload (for several seeds) exercises a crash at every I/O the
// engine performs.

// tortureOutcome is what the workload promised before the plug was
// pulled: keys that must survive recovery, keys that must not, and
// commit-in-flight key groups where either all or none may survive —
// but never part of one.
type tortureOutcome struct {
	committed map[string][]int64
	aborted   map[string][]int64
	inDoubt   []map[string][]int64 // one group per unresolved transaction
}

func newTortureOutcome() *tortureOutcome {
	return &tortureOutcome{
		committed: map[string][]int64{},
		aborted:   map[string][]int64{},
	}
}

func (o *tortureOutcome) resolve(keys map[string][]int64, into map[string][]int64) {
	for tb, ks := range keys {
		into[tb] = append(into[tb], ks...)
	}
}

const tortureOps = 36

// runTortureWorkload drives the seeded workload against dir through inj.
// Decisions come only from the seed, so two runs with the same seed hit
// the injector's failpoints in the same order — which is what makes
// "crash at point k" reproducible. Returns the promised outcome and the
// number of failpoints the (un-crashed portion of the) workload reached.
func runTortureWorkload(t *testing.T, dir string, seed int64, inj *fault.Injector) (*tortureOutcome, int64) {
	t.Helper()
	db, err := Open(dir, Options{DOP: 1, FaultInjector: inj})
	if err != nil {
		t.Fatalf("seed %d: open: %v", seed, err)
	}
	// Setup runs before Arm: the DDL and its checkpoint become the shim's
	// durable baseline, so the fault window covers only the workload.
	if _, err := db.Exec(`CREATE TABLE torture_h (k BIGINT, s VARCHAR(16))`); err != nil {
		t.Fatalf("seed %d: ddl: %v", seed, err)
	}
	if _, err := db.Exec(`CREATE TABLE torture_c (id BIGINT PRIMARY KEY CLUSTERED, v VARCHAR(16))`); err != nil {
		t.Fatalf("seed %d: ddl: %v", seed, err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("seed %d: setup checkpoint: %v", seed, err)
	}
	inj.Arm()

	type sessState struct {
		s    *Session
		open bool
		keys map[string][]int64
	}
	sessions := make([]*sessState, 3)
	for i := range sessions {
		sessions[i] = &sessState{s: db.NewSession()}
	}
	rng := rand.New(rand.NewSource(seed))
	out := newTortureOutcome()
	nextKey := int64(1)
	openCount := 0

	finish := func(ss *sessState, commit bool) {
		defer func() { ss.open = false; ss.keys = nil; openCount-- }()
		if commit {
			if err := ss.s.Commit(); err != nil {
				if !inj.Crashed() {
					t.Fatalf("seed %d: commit failed without a crash: %v", seed, err)
				}
				// The crash landed inside (or before) this commit: the
				// record may or may not have become durable. All-or-nothing
				// is the only promise.
				out.inDoubt = append(out.inDoubt, ss.keys)
				return
			}
			out.resolve(ss.keys, out.committed)
			return
		}
		// Rolled back — or the rollback itself hit the crash. Either way no
		// commit record exists, so recovery must drop every row.
		_ = ss.s.Rollback()
		out.resolve(ss.keys, out.aborted)
	}

	for op := 0; op < tortureOps && !inj.Crashed(); op++ {
		if openCount == 0 && rng.Intn(8) == 0 {
			// Periodic checkpoint at a quiescent point (CHECKPOINT is
			// refused while a transaction is open).
			if err := db.Checkpoint(); err != nil && !inj.Crashed() {
				t.Fatalf("seed %d: checkpoint: %v", seed, err)
			}
			continue
		}
		ss := sessions[rng.Intn(len(sessions))]
		if !ss.open {
			if err := ss.s.Begin(); err != nil {
				break // only possible after the crash
			}
			ss.open = true
			ss.keys = map[string][]int64{}
			openCount++
		}
		batch := 1 + rng.Intn(4)
		insertErr := false
		for j := 0; j < batch; j++ {
			table, val := "torture_h", "'h'"
			if rng.Intn(2) == 1 {
				table, val = "torture_c", "'c'"
			}
			k := nextKey
			nextKey++
			ss.keys[table] = append(ss.keys[table], k)
			if _, err := ss.s.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%d, %s)", table, k, val)); err != nil {
				insertErr = true
				break
			}
		}
		if insertErr {
			// The transaction never reached commit, so no commit record can
			// exist: every key it touched (including the failed one) must be
			// gone after recovery.
			finish(ss, false)
			continue
		}
		switch d := rng.Intn(10); {
		case d < 4:
			finish(ss, true)
		case d < 6:
			finish(ss, false)
		default:
			// Leave the transaction open; it grows when picked again.
		}
	}
	// Resolve stragglers so the promised state is closed-form.
	for _, ss := range sessions {
		if ss.open {
			finish(ss, true)
		}
	}
	points := inj.Points()
	_ = db.Close() // errors expected after a crash
	return out, points
}

// verifyTortureInvariants reopens dir without any injector — the reboot
// after the power loss — and checks every durability promise.
func verifyTortureInvariants(t *testing.T, dir, label string, out *tortureOutcome) {
	t.Helper()
	db, err := Open(dir, Options{DOP: 1})
	if err != nil {
		t.Fatalf("%s: reopen after crash failed: %v", label, err)
	}
	defer db.Close()
	if err := db.Health(); err != nil {
		t.Errorf("%s: recovered database unhealthy: %v", label, err)
	}

	keyCol := map[string]string{"torture_h": "k", "torture_c": "id"}
	present := map[string]map[int64]bool{}
	for tb, col := range keyCol {
		res, err := db.Exec("SELECT " + col + " FROM " + tb)
		if err != nil {
			t.Fatalf("%s: scan %s after recovery: %v", label, tb, err)
		}
		present[tb] = map[int64]bool{}
		for _, r := range res.Rows {
			k := r[0].I
			if present[tb][k] {
				t.Errorf("%s: key %d duplicated in %s after recovery", label, k, tb)
			}
			present[tb][k] = true
		}
	}

	expected := map[string]map[int64]bool{"torture_h": {}, "torture_c": {}}
	for tb, ks := range out.committed {
		for _, k := range ks {
			expected[tb][k] = true
			if !present[tb][k] {
				t.Errorf("%s: committed key %d lost from %s", label, k, tb)
			}
		}
	}
	for tb, ks := range out.aborted {
		for _, k := range ks {
			if present[tb][k] {
				t.Errorf("%s: aborted key %d resurrected in %s", label, k, tb)
			}
		}
	}
	for i, grp := range out.inDoubt {
		have, miss := 0, 0
		for tb, ks := range grp {
			for _, k := range ks {
				expected[tb][k] = true
				if present[tb][k] {
					have++
				} else {
					miss++
				}
			}
		}
		if have > 0 && miss > 0 {
			t.Errorf("%s: in-doubt txn %d partially applied (%d rows present, %d missing)", label, i, have, miss)
		}
	}
	// No row may exist that nobody committed (or had in flight).
	for tb, ks := range present {
		for k := range ks {
			if !expected[tb][k] {
				t.Errorf("%s: unexplained key %d in %s after recovery", label, k, tb)
			}
		}
	}

	reports, err := db.VerifyIntegrity()
	if err != nil {
		t.Fatalf("%s: VerifyIntegrity: %v", label, err)
	}
	for _, rep := range reports {
		for _, f := range rep.Failures {
			t.Errorf("%s: integrity failure in %s: %s", label, rep.Table, f)
		}
	}
}

// TestCrashTortureSweep is the tentpole: for each seed it first runs the
// workload fault-free to count failpoints, then replays it crashing at
// point k for a sweep of k values (every third crash is a torn power
// loss that keeps a partial final write), reopening and checking
// invariants each time.
func TestCrashTortureSweep(t *testing.T) {
	seeds := []int64{1, 7, 42}
	targetPerSeed := int64(85) // >= 255 distinct crash points across seeds
	if testing.Short() {
		seeds = seeds[:2]
		targetPerSeed = 25
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			baseDir := filepath.Join(t.TempDir(), "base")
			baseInj := fault.New()
			out, points := runTortureWorkload(t, baseDir, seed, baseInj)
			if baseInj.Crashed() {
				t.Fatal("baseline run crashed with no rules")
			}
			if points == 0 {
				t.Fatal("workload reached no failpoints")
			}
			// The baseline's buffered state must survive an uninjected
			// reopen too (clean-shutdown write-back).
			if err := baseInj.WriteBack(); err != nil {
				t.Fatal(err)
			}
			verifyTortureInvariants(t, baseDir, "baseline", out)

			stride := points / targetPerSeed
			if stride < 1 {
				stride = 1
			}
			crashes := 0
			for k := int64(1); k <= points; k += stride {
				rule := &fault.Rule{Nth: k, Kind: fault.KindCrash}
				if k%3 == 0 {
					rule.TornFrac = 0.6
				}
				inj := fault.New(rule)
				dir := filepath.Join(t.TempDir(), fmt.Sprintf("crash%d", k))
				cout, _ := runTortureWorkload(t, dir, seed, inj)
				if !inj.Crashed() {
					t.Fatalf("crash point %d never fired: workload is not deterministic", k)
				}
				if err := inj.PersistErr(); err != nil {
					t.Fatalf("crash point %d: persisting crash image: %v", k, err)
				}
				verifyTortureInvariants(t, dir, fmt.Sprintf("crash@%d", k), cout)
				crashes++
			}
			t.Logf("seed %d: %d failpoints, %d crash points swept", seed, points, crashes)
		})
	}
}

// TestCrashTortureConcurrent crashes under truly concurrent sessions.
// Point ordering is racy here, so the crash lands somewhere different on
// every run — the recovery invariants must hold wherever it lands. Run
// under -race this also checks the injector and shim locking.
func TestCrashTortureConcurrent(t *testing.T) {
	for _, crashAt := range []int64{5, 25, 60} {
		crashAt := crashAt
		t.Run(fmt.Sprintf("point%d", crashAt), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "db")
			inj := fault.New(&fault.Rule{Nth: crashAt, Kind: fault.KindCrash})
			db, err := Open(dir, Options{DOP: 2, FaultInjector: inj})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.Exec(`CREATE TABLE torture_h (k BIGINT, s VARCHAR(16))`); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Exec(`CREATE TABLE torture_c (id BIGINT PRIMARY KEY CLUSTERED, v VARCHAR(16))`); err != nil {
				t.Fatal(err)
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			inj.Arm()

			var mu sync.Mutex
			out := newTortureOutcome()
			var wg sync.WaitGroup
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					s := db.NewSession()
					base := int64(g+1) * 100000
					for txn := int64(0); txn < 8; txn++ {
						if err := s.Begin(); err != nil {
							return
						}
						keys := map[string][]int64{}
						failed := false
						for j := int64(0); j < 3; j++ {
							k := base + txn*10 + j
							keys["torture_h"] = append(keys["torture_h"], k)
							if _, err := s.Exec(fmt.Sprintf("INSERT INTO torture_h VALUES (%d, 'c')", k)); err != nil {
								failed = true
								break
							}
						}
						if failed {
							_ = s.Rollback()
							mu.Lock()
							out.resolve(keys, out.aborted)
							mu.Unlock()
							return
						}
						err := s.Commit()
						mu.Lock()
						if err != nil {
							out.inDoubt = append(out.inDoubt, keys)
						} else {
							out.resolve(keys, out.committed)
						}
						mu.Unlock()
					}
				}(g)
			}
			wg.Wait()
			if !inj.Crashed() {
				t.Fatalf("workload finished before point %d", crashAt)
			}
			_ = db.Close()
			verifyTortureInvariants(t, dir, fmt.Sprintf("concurrent@%d", crashAt), out)
		})
	}
}
