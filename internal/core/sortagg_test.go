package core

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

// loadEventsTable populates one heap table big enough for the parallel
// planner, with duplicated sort keys (for stability checks) and grouped
// keys, plus a NULL sprinkle.
func loadEventsTable(t *testing.T, db *Database, n, keySpace, groups int) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE events (k INT, grp INT, seq INT, payload VARCHAR(40))`)
	rows := make([]sqltypes.Row, n)
	for i := 0; i < n; i++ {
		k := sqltypes.NewInt(int64((i * 13) % keySpace))
		g := sqltypes.NewInt(int64((i * 7) % groups))
		if i%97 == 0 {
			g = sqltypes.Null
		}
		rows[i] = sqltypes.Row{k, g, sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("ev-%06d", i))}
	}
	if err := db.InsertRows("events", rows); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CHECKPOINT")
}

func openSortAggDB(t *testing.T, sortBudget, aggBudget int64, n int) *Database {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "db"), Options{
		DOP:               4,
		ParallelThreshold: 256,
		SortMemoryBudget:  sortBudget,
		AggMemoryBudget:   aggBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	loadEventsTable(t, db, n, 200, 400)
	return db
}

// ordered renders rows preserving their order (sorts must compare
// sequences, not sets).
func ordered(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = fmt.Sprint(r)
	}
	return out
}

// TestSortSpillsAndMatchesInMemory is the end-to-end acceptance check
// for the external sort: ORDER BY over an input far larger than the sort
// budget must spill runs, return exactly the in-memory sequence (equal
// keys stay in table order across spilled runs), and clean up its temp
// files.
func TestSortSpillsAndMatchesInMemory(t *testing.T) {
	const sql = `SELECT k, seq, payload FROM events ORDER BY k`
	inMemDB := openSortAggDB(t, -1, -1, 6000) // negative = unlimited
	explain := mustExec(t, inMemDB, "EXPLAIN "+sql)
	if !strings.Contains(explain.Plan, "Merge Gather") {
		t.Fatalf("expected parallel sort plan:\n%s", explain.Plan)
	}
	inMem := ordered(mustExec(t, inMemDB, sql))
	if s := inMemDB.ExecStats().Sort; s.Runs != 0 {
		t.Fatalf("unlimited budget spilled runs: %+v", s)
	}

	spillDB := openSortAggDB(t, 8<<10, -1, 6000)
	spilledRes := mustExec(t, spillDB, sql)
	spilled := ordered(spilledRes)
	s := spillDB.ExecStats().Sort
	if s.Runs == 0 || s.SpilledRows == 0 || s.SpilledBytes == 0 {
		t.Fatalf("8 KB sort budget did not spill: %+v", s)
	}
	if !reflect.DeepEqual(inMem, spilled) {
		t.Fatalf("spilled ORDER BY differs from in-memory (%d vs %d rows)", len(spilled), len(inMem))
	}
	// Stability: rows with equal k must keep ascending seq (table order)
	// even though they crossed spilled runs and partition merges.
	for i := 1; i < len(spilledRes.Rows); i++ {
		prev, cur := spilledRes.Rows[i-1], spilledRes.Rows[i]
		if prev[0].I == cur[0].I && prev[1].I >= cur[1].I {
			t.Fatalf("row %d: equal keys out of table order (%v then %v)", i, prev, cur)
		}
	}
	// Temp files are gone once queries finish.
	tmpDir := filepath.Join(spillDB.Dir(), "tmp")
	if entries, err := os.ReadDir(tmpDir); err == nil && len(entries) > 0 {
		t.Errorf("%d spill files left behind in %s", len(entries), tmpDir)
	}

	// Serial DOP must produce the identical sequence (stability contract).
	serialDB := openSortAggDB(t, 8<<10, -1, 6000)
	serialDB.SetDOP(1)
	serial := ordered(mustExec(t, serialDB, sql))
	if !reflect.DeepEqual(inMem, serial) {
		t.Fatal("DOP 1 spilled sort differs from DOP 4 in-memory sort")
	}
}

// TestAggregateSpillsAndMatchesInMemory: GROUP BY over more groups than
// the budget can hold must freeze partitions, spill raw rows, and return
// exactly the in-memory groups — including the NULL group key.
func TestAggregateSpillsAndMatchesInMemory(t *testing.T) {
	const sql = `SELECT grp, COUNT(*), SUM(seq), MIN(payload) FROM events GROUP BY grp`
	inMemDB := openSortAggDB(t, -1, -1, 6000)
	explain := mustExec(t, inMemDB, "EXPLAIN "+sql)
	if !strings.Contains(explain.Plan, "Partial Aggregate") || !strings.Contains(explain.Plan, "Final Aggregate") {
		t.Fatalf("expected partial/final aggregate plan:\n%s", explain.Plan)
	}
	inMem := canonResult(mustExec(t, inMemDB, sql))
	if s := inMemDB.ExecStats().Agg; s.SpilledPartitions != 0 {
		t.Fatalf("unlimited budget spilled: %+v", s)
	}

	spillDB := openSortAggDB(t, -1, 4<<10, 6000)
	spilled := canonResult(mustExec(t, spillDB, sql))
	s := spillDB.ExecStats().Agg
	if s.SpilledPartitions == 0 || s.SpilledRows == 0 || s.SpillRecursions == 0 {
		t.Fatalf("4 KB agg budget did not spill: %+v", s)
	}
	if !reflect.DeepEqual(inMem, spilled) {
		t.Fatalf("spilled GROUP BY differs from in-memory (%d vs %d groups)", len(spilled), len(inMem))
	}
	tmpDir := filepath.Join(spillDB.Dir(), "tmp")
	if entries, err := os.ReadDir(tmpDir); err == nil && len(entries) > 0 {
		t.Errorf("%d spill files left behind in %s", len(entries), tmpDir)
	}

	// Serial plan (DOP 1) spills through the same machinery.
	serialDB := openSortAggDB(t, -1, 4<<10, 6000)
	serialDB.SetDOP(1)
	serial := canonResult(mustExec(t, serialDB, sql))
	if !reflect.DeepEqual(inMem, serial) {
		t.Fatal("DOP 1 spilled aggregate differs from in-memory")
	}
	if s := serialDB.ExecStats().Agg; s.SpilledPartitions == 0 {
		t.Fatalf("DOP 1 aggregate did not spill: %+v", s)
	}
}

// TestRowNumberSpillsAndMatches: the paper's Query 1 ranking construct
// must survive run spilling with identical numbering.
func TestRowNumberSpillsAndMatches(t *testing.T) {
	const sql = `SELECT ROW_NUMBER() OVER (ORDER BY k DESC) AS rank, k, seq FROM events`
	inMemDB := openSortAggDB(t, -1, -1, 4000)
	inMem := ordered(mustExec(t, inMemDB, sql))

	spillDB := openSortAggDB(t, 8<<10, -1, 4000)
	spilled := ordered(mustExec(t, spillDB, sql))
	if s := spillDB.ExecStats().Sort; s.Runs == 0 {
		t.Fatalf("row-number sort did not spill: %+v", s)
	}
	if !reflect.DeepEqual(inMem, spilled) {
		t.Fatal("spilled ROW_NUMBER differs from in-memory")
	}
}

// TestExecStatsUnifiedSurface: one snapshot covers pool, join, sort and
// aggregate counters, and deltas accumulate across queries.
func TestExecStatsUnifiedSurface(t *testing.T) {
	db := openSortAggDB(t, 8<<10, 4<<10, 6000)
	before := db.ExecStats()
	mustExec(t, db, `SELECT k FROM events ORDER BY k`)
	mustExec(t, db, `SELECT grp, COUNT(*) FROM events GROUP BY grp`)
	d := db.ExecStats().Sub(before)
	if d.Sort.Sorts == 0 || d.Sort.Runs == 0 {
		t.Fatalf("sort counters did not advance: %+v", d.Sort)
	}
	if d.Agg.SpilledPartitions == 0 {
		t.Fatalf("agg counters did not advance: %+v", d.Agg)
	}
	if d.Pool.Hits+d.Pool.Misses == 0 {
		t.Fatalf("pool counters did not advance: %+v", d.Pool)
	}
}
