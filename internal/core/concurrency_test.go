package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sqltypes"
)

// TestConcurrentQueries runs many parallel-plan SELECTs from multiple
// goroutines (readers share db.mu; each query spawns its own worker
// goroutines). Run with -race in CI.
func TestConcurrentQueries(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE big (g VARCHAR(10), v INT)`)
	var rows []sqltypes.Row
	for i := 0; i < 30000; i++ {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewString(fmt.Sprintf("g%d", i%64)),
			sqltypes.NewInt(int64(i)),
		})
	}
	if err := db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	const goroutines = 6
	const iterations = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iterations)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				res, err := db.Exec(`SELECT g, COUNT(*), SUM(v) FROM big GROUP BY g`)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 64 {
					errs <- fmt.Errorf("goroutine %d: %d groups", g, len(res.Rows))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentReadersWithWriter interleaves queries with inserts; the
// session lock serializes writers against readers, and every query must
// observe a consistent count (no torn reads of in-flight batches).
func TestConcurrentReadersWithWriter(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (v INT)`)
	const batches = 20
	const batchSize = 500
	done := make(chan struct{})
	go func() {
		defer close(done)
		for b := 0; b < batches; b++ {
			rows := make([]sqltypes.Row, batchSize)
			for i := range rows {
				rows[i] = sqltypes.Row{sqltypes.NewInt(int64(b*batchSize + i))}
			}
			if err := db.InsertRows("t", rows); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			res := mustExec(t, db, `SELECT COUNT(*) FROM t`)
			if res.Rows[0][0].I != batches*batchSize {
				t.Fatalf("final count = %v", res.Rows)
			}
			return
		default:
			res, err := db.Exec(`SELECT COUNT(*) FROM t`)
			if err != nil {
				t.Fatal(err)
			}
			n := res.Rows[0][0].I
			if n%batchSize != 0 {
				t.Fatalf("observed torn batch: count = %d", n)
			}
		}
	}
}
