package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// loadTwoTables creates heap tables a and b with enough rows to seal
// pages, checkpoints, and closes — leaving both durable on disk.
func loadTwoTables(t *testing.T, dir string, opts Options) {
	t.Helper()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		mustExec(t, db, fmt.Sprintf(`CREATE TABLE %s (k BIGINT, s VARCHAR(24))`, name))
		rows := make([]sqltypes.Row, 0, 2000)
		for i := 0; i < 2000; i++ {
			rows = append(rows, sqltypes.Row{
				sqltypes.NewInt(int64(i)),
				sqltypes.NewString(fmt.Sprintf("%s-row-%08d", name, i)),
			})
		}
		if err := db.InsertRows(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// tableFile finds the on-disk storage file of a table by name substring.
func tableFile(t *testing.T, dir, name string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".heap" &&
			len(e.Name()) > 0 && containsTableName(e.Name(), name) {
			return filepath.Join(dir, e.Name())
		}
	}
	t.Fatalf("no heap file for table %s in %s", name, dir)
	return ""
}

func containsTableName(file, table string) bool {
	// Files are named t<id>_<name>.heap.
	return len(file) > len(table)+6 && file[len(file)-len(table)-5:len(file)-5] == table
}

// TestCorruptPageFailsQueryNotDatabase: a flipped bit in one table's
// sealed page fails queries over that table with ErrCorruptPage and bumps
// the integrity counter — while the database opens cleanly, other tables
// scan normally, and Health stays nil.
func TestCorruptPageFailsQueryNotDatabase(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	loadTwoTables(t, dir, Options{DOP: 1})

	// Flip one byte in the middle of table a's first sealed data page.
	path := tableFile(t, dir, "a")
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{0}
	off := int64(storage.PageSize) + 100
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Bit rot must not prevent opening: it surfaces at query time.
	db, err := Open(dir, Options{DOP: 1})
	if err != nil {
		t.Fatalf("open with one corrupt page failed: %v", err)
	}
	defer db.Close()

	_, qerr := db.Exec(`SELECT k, s FROM a`)
	if qerr == nil {
		t.Fatal("scan over corrupt page succeeded")
	}
	if !errors.Is(qerr, storage.ErrCorruptPage) {
		t.Fatalf("scan error = %v, want wrapped ErrCorruptPage", qerr)
	}
	if n := db.ExecStats().Integrity.ChecksumFailures; n == 0 {
		t.Error("checksum failure did not increment the integrity counter")
	}

	// The unrelated table is untouched and the database is not poisoned.
	res, err := db.Exec(`SELECT COUNT(*) FROM b`)
	if err != nil {
		t.Fatalf("scan of healthy table after corruption: %v", err)
	}
	if res.Rows[0][0].I != 2000 {
		t.Fatalf("healthy table count = %d", res.Rows[0][0].I)
	}
	if herr := db.Health(); herr != nil {
		t.Fatalf("corrupt page poisoned the database: %v", herr)
	}

	// Offline verification pinpoints the damaged table.
	reports, err := db.VerifyIntegrity()
	if err != nil {
		t.Fatal(err)
	}
	var aFail, bFail int
	for _, rep := range reports {
		switch rep.Table {
		case "a":
			aFail = len(rep.Failures)
		case "b":
			bFail = len(rep.Failures)
		}
	}
	if aFail == 0 {
		t.Error("VerifyIntegrity found no failure in the corrupted table")
	}
	if bFail != 0 {
		t.Errorf("VerifyIntegrity reported failures in the healthy table: %d", bFail)
	}
}

// TestLegacyPagesOpenAndUpgrade: a database written before page checksums
// existed (version byte 0, no CRC) opens cleanly, scans without
// verification, and new pages appended after the upgrade are checksummed —
// a mixed-format file stays fully readable.
func TestLegacyPagesOpenAndUpgrade(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	// DisablePageChecksums writes the legacy (version-0) format — the
	// same bytes a pre-checksum build produced.
	loadTwoTables(t, dir, Options{DOP: 1, DisablePageChecksums: true})

	db, err := Open(dir, Options{DOP: 1})
	if err != nil {
		t.Fatalf("open of pre-checksum database failed: %v", err)
	}
	defer db.Close()
	res, err := db.Exec(`SELECT COUNT(*) FROM a`)
	if err != nil {
		t.Fatalf("scan of legacy pages: %v", err)
	}
	if res.Rows[0][0].I != 2000 {
		t.Fatalf("legacy scan count = %d", res.Rows[0][0].I)
	}
	if n := db.ExecStats().Integrity.ChecksumFailures; n != 0 {
		t.Fatalf("legacy pages reported %d checksum failures", n)
	}

	// Append new rows with the current build and checkpoint: the file now
	// mixes legacy and checksummed pages.
	rows := make([]sqltypes.Row, 0, 2000)
	for i := 2000; i < 4000; i++ {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("a-row-%08d", i)),
		})
	}
	if err := db.InsertRows("a", rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	reports, err := db.VerifyIntegrity()
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if rep.Table != "a" {
			continue
		}
		if len(rep.Failures) != 0 {
			t.Fatalf("mixed-format table failures: %v", rep.Failures)
		}
		if rep.PagesSkipped == 0 {
			t.Error("expected unverifiable legacy pages to be counted as skipped")
		}
		if rep.PagesChecked == 0 {
			t.Error("expected new pages to be checksummed after upgrade")
		}
	}

	// The mixed file survives a reopen and full scan.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{DOP: 1})
	if err != nil {
		t.Fatalf("reopen of mixed-format database: %v", err)
	}
	defer db2.Close()
	res, err = db2.Exec(`SELECT COUNT(*) FROM a`)
	if err != nil {
		t.Fatalf("scan of mixed-format table: %v", err)
	}
	if res.Rows[0][0].I != 4000 {
		t.Fatalf("mixed-format count = %d, want 4000", res.Rows[0][0].I)
	}
}
