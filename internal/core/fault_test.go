package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sqltypes"
)

// openFaultDB opens a database routed through inj with small spill
// budgets, creates table t, and loads rows rows into it (all before the
// injector is armed).
func openFaultDB(t *testing.T, inj *fault.Injector, rows int) *Database {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "db"), Options{
		DOP:              1,
		FaultInjector:    inj,
		SortMemoryBudget: 4 << 10,
		AggMemoryBudget:  4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	mustExec(t, db, `CREATE TABLE t (a BIGINT, s VARCHAR(24))`)
	batch := make([]sqltypes.Row, 0, rows)
	for i := 0; i < rows; i++ {
		batch = append(batch, sqltypes.Row{
			sqltypes.NewInt(int64(i * 7 % rows)),
			sqltypes.NewString(fmt.Sprintf("payload-%08d", i)),
		})
	}
	if err := db.InsertRows("t", batch); err != nil {
		t.Fatal(err)
	}
	return db
}

// assertPoisoned checks the exactly-once poison contract: Health returns
// the original fault, later statements are blocked with it, and further
// failures do not replace it.
func assertPoisoned(t *testing.T, db *Database, base error, wantSubstr string) {
	t.Helper()
	herr := db.Health()
	if herr == nil {
		t.Fatal("database not poisoned")
	}
	if !errors.Is(herr, base) {
		t.Fatalf("Health() = %v, want wrapped %v", herr, base)
	}
	if !strings.Contains(herr.Error(), wantSubstr) {
		t.Fatalf("Health() = %q, want substring %q", herr, wantSubstr)
	}
	first := herr.Error()
	// Every later statement is blocked by the original error — including
	// statements that themselves fail (they must not re-poison).
	for i := 0; i < 2; i++ {
		_, err := db.Exec(`SELECT COUNT(*) FROM t`)
		if err == nil {
			t.Fatal("statement succeeded on a poisoned database")
		}
		if !errors.Is(err, base) {
			t.Fatalf("blocked statement error = %v, want wrapped %v", err, base)
		}
	}
	if now := db.Health().Error(); now != first {
		t.Fatalf("poison error changed: %q -> %q (must poison exactly once)", first, now)
	}
}

// TestIndexInsertFaultFailsStatementOnly: a failpoint on the btree
// write path ("btree.append") makes one secondary-index insert fail.
// The statement must fail alone — the database stays healthy, the row
// and its partial index entries are rolled back, and later statements
// (including index scans) behave normally.
func TestIndexInsertFaultFailsStatementOnly(t *testing.T) {
	inj := fault.New(&fault.Rule{Site: "btree.append", Nth: 1, Kind: fault.KindErrIO})
	db := openFaultDB(t, inj, 512)
	mustExec(t, db, `CREATE INDEX ix_a ON t (a)`)
	before := mustExec(t, db, `SELECT COUNT(*) FROM t`).Rows[0][0].I

	inj.Arm()
	_, err := db.Exec(`INSERT INTO t VALUES (777777, 'doomed')`)
	inj.Disarm()
	if err == nil {
		t.Fatal("insert with failing index maintenance succeeded")
	}
	if !errors.Is(err, fault.ErrInjectedIO) {
		t.Fatalf("error = %v, want injected IO", err)
	}
	if herr := db.Health(); herr != nil {
		t.Fatalf("statement failure poisoned the database: %v", herr)
	}

	// The failed row is invisible on both access paths.
	if n := mustExec(t, db, `SELECT COUNT(*) FROM t`).Rows[0][0].I; n != before {
		t.Fatalf("row count %d after failed insert, want %d", n, before)
	}
	if res := mustExec(t, db, `SELECT s FROM t WHERE a = 777777`); len(res.Rows) != 0 {
		t.Fatalf("failed row visible via index: %v", res.Rows)
	}

	// The table accepts writes again and the index serves them.
	mustExec(t, db, `INSERT INTO t VALUES (777777, 'survivor')`)
	res := mustExec(t, db, `SELECT s FROM t WHERE a = 777777`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "survivor" {
		t.Fatalf("index lookup after recovery = %v", res.Rows)
	}
}

// TestIndexInsertFaultInTxnForcesRollback: inside an explicit
// transaction a failed index insert leaves a partial (undoable) write
// set, so the transaction turns abort-only: later statements still run,
// but COMMIT refuses, rolls everything back, and the database stays
// healthy.
func TestIndexInsertFaultInTxnForcesRollback(t *testing.T) {
	inj := fault.New(&fault.Rule{Site: "btree.append", Nth: 1, Kind: fault.KindErrIO})
	db := openFaultDB(t, inj, 512)
	mustExec(t, db, `CREATE INDEX ix_a ON t (a)`)
	before := mustExec(t, db, `SELECT COUNT(*) FROM t`).Rows[0][0].I

	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	inj.Arm()
	_, err := db.Exec(`INSERT INTO t VALUES (888888, 'doomed')`)
	inj.Disarm()
	if err == nil {
		t.Fatal("insert with failing index maintenance succeeded")
	}
	// The transaction survives for more statements...
	mustExec(t, db, `INSERT INTO t VALUES (888889, 'sibling')`)
	// ...but commit must refuse and roll back instead.
	if err := db.Commit(); err == nil {
		t.Fatal("COMMIT succeeded on an abort-only transaction")
	} else if !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("commit error = %v, want rollback notice", err)
	}
	if herr := db.Health(); herr != nil {
		t.Fatalf("abort-only commit poisoned the database: %v", herr)
	}
	if n := mustExec(t, db, `SELECT COUNT(*) FROM t`).Rows[0][0].I; n != before {
		t.Fatalf("row count %d after rolled-back txn, want %d", n, before)
	}
	for _, a := range []int{888888, 888889} {
		if res := mustExec(t, db, fmt.Sprintf(`SELECT s FROM t WHERE a = %d`, a)); len(res.Rows) != 0 {
			t.Fatalf("rolled-back row %d visible via index: %v", a, res.Rows)
		}
	}
	// A fresh transaction on the same session works.
	mustExec(t, db, `INSERT INTO t VALUES (888890, 'after')`)
	if n := mustExec(t, db, `SELECT COUNT(*) FROM t`).Rows[0][0].I; n != before+1 {
		t.Fatalf("count %d after recovery insert, want %d", n, before+1)
	}
}

// TestCommitAppendFailurePoisons: the RecCommit append fails before
// anything reaches the log — the transaction can never become visible and
// the database poisons with the commit error.
func TestCommitAppendFailurePoisons(t *testing.T) {
	// After Arm: RecBegin is append 1, RecInsert append 2, RecCommit 3.
	inj := fault.New(&fault.Rule{Site: "wal.append", Nth: 3, Kind: fault.KindErrIO})
	db := openFaultDB(t, inj, 10)
	inj.Arm()
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `INSERT INTO t VALUES (999, 'doomed')`)
	err := db.Commit()
	if err == nil {
		t.Fatal("commit succeeded past injected append failure")
	}
	if !errors.Is(err, fault.ErrInjectedIO) {
		t.Fatalf("commit error = %v, want injected IO", err)
	}
	assertPoisoned(t, db, fault.ErrInjectedIO, "commit of txn")
}

// TestCommitFsyncFailurePoisons: the commit record is appended but the
// group fsync fails — in-doubt durability, so the database poisons with
// the flush error and treats the transaction as aborted in this process.
func TestCommitFsyncFailurePoisons(t *testing.T) {
	inj := fault.New(&fault.Rule{Site: "wal", Op: fault.OpSync, Nth: 1, Kind: fault.KindErrIO})
	db := openFaultDB(t, inj, 10)
	inj.Arm()
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `INSERT INTO t VALUES (999, 'doomed')`)
	err := db.Commit()
	if err == nil {
		t.Fatal("commit succeeded past injected fsync failure")
	}
	if !errors.Is(err, fault.ErrInjectedIO) {
		t.Fatalf("commit error = %v, want injected IO", err)
	}
	assertPoisoned(t, db, fault.ErrInjectedIO, "commit flush of txn")
}

// TestRollbackMidUndoPoisons: storage fails while rollback is deleting a
// clustered transaction's keys — half-reverted storage poisons, and the
// un-deleted keys stay masked dead rather than resurfacing.
func TestRollbackMidUndoPoisons(t *testing.T) {
	inj := fault.New(&fault.Rule{Site: "txn.undo", Nth: 1, Kind: fault.KindErrIO})
	db, err := Open(filepath.Join(t.TempDir(), "db"), Options{DOP: 1, FaultInjector: inj})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	mustExec(t, db, `CREATE TABLE t (a BIGINT PRIMARY KEY CLUSTERED, s VARCHAR(24))`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'keep')`)
	inj.Arm()
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `INSERT INTO t VALUES (2, 'undoomed')`)
	rbErr := db.Rollback()
	if rbErr == nil {
		t.Fatal("rollback succeeded past injected undo failure")
	}
	if !errors.Is(rbErr, fault.ErrInjectedIO) {
		t.Fatalf("rollback error = %v, want injected IO", rbErr)
	}
	assertPoisoned(t, db, fault.ErrInjectedIO, "failed mid-undo")
}

// tmpFiles lists the spill directory's contents on the real filesystem.
func tmpFiles(t *testing.T, db *Database) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(db.Dir(), "tmp"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestSpillENOSPCFailsOnlyQuery: a full disk while a sort spills runs
// must fail that query with a clear wrapped error — and nothing else. The
// database stays healthy, no temp files leak, and the same query succeeds
// once space is back.
func TestSpillENOSPCFailsOnlyQuery(t *testing.T) {
	inj := fault.New(&fault.Rule{Site: "spill", Kind: fault.KindErrNoSpace})
	db := openFaultDB(t, inj, 4000)
	inj.Arm()
	_, err := db.Exec(`SELECT a, s FROM t ORDER BY s`)
	if err == nil {
		t.Fatal("spilling sort succeeded with ENOSPC injected on every spill write")
	}
	if !errors.Is(err, fault.ErrNoSpace) {
		t.Fatalf("query error = %v, want wrapped ErrNoSpace", err)
	}
	if !strings.Contains(err.Error(), "spilling query temp state") {
		t.Fatalf("query error %q does not explain the spill failure", err)
	}
	if herr := db.Health(); herr != nil {
		t.Fatalf("spill failure poisoned the database: %v", herr)
	}
	if left := tmpFiles(t, db); len(left) != 0 {
		t.Fatalf("failed spill leaked temp files: %v", left)
	}
	// Unrelated statements still work...
	if n := countRows(t, db.defaultSess, "t"); n != 4000 {
		t.Fatalf("row count after failed spill = %d", n)
	}
	// ...and so does the very same query once the disk has space again.
	inj.Disarm()
	res, err := db.Exec(`SELECT a, s FROM t ORDER BY s`)
	if err != nil {
		t.Fatalf("query after space recovered: %v", err)
	}
	if len(res.Rows) != 4000 {
		t.Fatalf("recovered query returned %d rows", len(res.Rows))
	}
	if left := tmpFiles(t, db); len(left) != 0 {
		t.Fatalf("successful spill left temp files behind: %v", left)
	}
}

// TestSpillEIOJoinFailsOnlyQuery: same contract on the partitioned-join
// spill path with a hard I/O error instead of ENOSPC.
func TestSpillEIOJoinFailsOnlyQuery(t *testing.T) {
	inj := fault.New(&fault.Rule{Site: "spill", Op: fault.OpWrite, Kind: fault.KindErrIO})
	db, err := Open(filepath.Join(t.TempDir(), "db"), Options{
		DOP: 1, FaultInjector: inj, JoinMemoryBudget: 4 << 10, JoinPartitions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	mustExec(t, db, `CREATE TABLE t (a BIGINT, s VARCHAR(24))`)
	mustExec(t, db, `CREATE TABLE u (a BIGINT, s VARCHAR(24))`)
	batch := make([]sqltypes.Row, 0, 4000)
	for i := 0; i < 4000; i++ {
		batch = append(batch, sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("payload-%08d", i)),
		})
	}
	if err := db.InsertRows("t", batch); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("u", batch); err != nil {
		t.Fatal(err)
	}
	inj.Arm()
	_, qerr := db.Exec(`SELECT COUNT(*) FROM t JOIN u ON t.a = u.a`)
	if qerr == nil {
		t.Fatal("spilling join succeeded with EIO injected on every spill write")
	}
	if !errors.Is(qerr, fault.ErrInjectedIO) {
		t.Fatalf("query error = %v, want wrapped injected IO", qerr)
	}
	if !strings.Contains(qerr.Error(), "spilling query temp state") {
		t.Fatalf("query error %q does not explain the spill failure", qerr)
	}
	if herr := db.Health(); herr != nil {
		t.Fatalf("spill failure poisoned the database: %v", herr)
	}
	if left := tmpFiles(t, db); len(left) != 0 {
		t.Fatalf("failed spill leaked temp files: %v", left)
	}
	// The join still answers correctly once the fault clears.
	inj.Disarm()
	res, err := db.Exec(`SELECT COUNT(*) FROM t JOIN u ON t.a = u.a`)
	if err != nil {
		t.Fatalf("join after fault cleared: %v", err)
	}
	if res.Rows[0][0].I != 4000 {
		t.Fatalf("join count = %d, want 4000", res.Rows[0][0].I)
	}
	if left := tmpFiles(t, db); len(left) != 0 {
		t.Fatalf("successful spill left temp files behind: %v", left)
	}
}
