package core

import (
	"os"

	"repro/internal/blob"
)

// BlobStream re-exports blob.Stream for API consumers of the engine.
type BlobStream = blob.Stream

func newGUIDForImport() string { return blob.NewGUID() }

func removeFile(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
