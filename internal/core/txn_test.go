package core

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/sqltypes"
)

// countRows runs SELECT COUNT(*) through a session (snapshot-visible).
func countRows(t *testing.T, s *Session, table string) int64 {
	t.Helper()
	res, err := s.Exec("SELECT COUNT(*) FROM " + table)
	if err != nil {
		t.Fatalf("count %s: %v", table, err)
	}
	return res.Rows[0][0].I
}

// A duplicate-key INSERT must fail without touching the existing row.
// The pre-fix code ran the upsert before the duplicate check, so the
// losing INSERT silently replaced the stored row image.
func TestDuplicatePKPreservesExistingRow(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir, Options{DOP: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE c (id BIGINT PRIMARY KEY CLUSTERED, v VARCHAR(20))`)
	mustExec(t, db, `INSERT INTO c VALUES (1, 'original'), (2, 'two')`)
	if _, err := db.Exec(`INSERT INTO c VALUES (1, 'clobber')`); err == nil {
		t.Fatal("duplicate PK insert succeeded")
	}
	check := func(d *Database, when string) {
		res, err := d.Exec(`SELECT v FROM c WHERE id = 1`)
		if err != nil {
			t.Fatalf("%s: %v", when, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].S != "original" {
			t.Fatalf("%s: row clobbered by failed duplicate insert: %v", when, res.Rows)
		}
	}
	check(db, "before reopen")
	// The failed statement rolled back; WAL recovery must reach the same
	// state (no checkpoint ran, so the reopen replays the log).
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{DOP: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	check(db2, "after WAL recovery")
	if n, _ := db2.TableRowCount("c"); n != 2 {
		t.Fatalf("row count after recovery = %d, want 2", n)
	}
}

// Rolled-back inserts must not advance the stats modification counter:
// the pre-fix code counted at insert time, so a large aborted load made
// the planner discard perfectly valid statistics.
func TestRollbackDoesNotInflateStatsStaleness(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a BIGINT, s VARCHAR(10))`)
	rows := make([]sqltypes.Row, 0, 2000)
	for i := 0; i < 2000; i++ {
		rows = append(rows, sqltypes.Row{sqltypes.NewInt(int64(i % 100)), sqltypes.NewString("x")})
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "ANALYZE TABLE t")
	if db.TableStatistics("t") == nil {
		t.Fatal("no stats after ANALYZE")
	}
	// Insert far more than the staleness limit (rowCount/5 = 400), then
	// roll every row back.
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("t", rows[:1000]); err != nil {
		t.Fatal(err)
	}
	if err := db.Rollback(); err != nil {
		t.Fatal(err)
	}
	if db.TableStatistics("t") == nil {
		t.Fatal("stats went stale from a rolled-back insert")
	}
	// The same volume committed must trip the staleness check.
	if err := db.InsertRows("t", rows[:1000]); err != nil {
		t.Fatal(err)
	}
	if db.TableStatistics("t") != nil {
		t.Fatal("stats still fresh after large committed insert")
	}
}

// A rollback that fails mid-undo leaves storage half-reverted; the
// database must refuse further statements instead of serving a corrupted
// image. (The pre-fix code cleared the transaction slot and carried on.)
func TestFailedUndoPoisonsDatabase(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE c (id BIGINT PRIMARY KEY CLUSTERED, v VARCHAR(20))`)
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `INSERT INTO c VALUES (1, 'x')`)
	// Sabotage the undo path: close the tree file underneath the engine
	// so the rollback's key delete fails.
	td, err := db.table("c")
	if err != nil {
		t.Fatal(err)
	}
	td.tree.Close()
	if err := db.Rollback(); err == nil {
		t.Fatal("rollback succeeded over a closed tree")
	}
	if db.Health() == nil {
		t.Fatal("database not poisoned after failed undo")
	}
	if _, err := db.Exec(`SELECT COUNT(*) FROM c`); err == nil {
		t.Fatal("poisoned database accepted a statement")
	}
	if err := db.Begin(); err == nil {
		t.Fatal("poisoned database opened a transaction")
	}
}

// Sessions are isolated: one session's uncommitted writes are invisible
// to others, and inside an explicit transaction reads are repeatable
// even as other sessions commit.
func TestSnapshotIsolationAcrossSessions(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a BIGINT)`)
	writer := db.NewSession()
	reader := db.NewSession()

	if err := writer.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Exec(`INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	// Uncommitted writes: invisible to the reader, visible to the writer.
	if n := countRows(t, reader, "t"); n != 0 {
		t.Fatalf("reader sees %d uncommitted rows", n)
	}
	if n := countRows(t, writer, "t"); n != 3 {
		t.Fatalf("writer sees %d of its own rows, want 3", n)
	}
	// Repeatable reads: a transaction's snapshot is fixed at BEGIN.
	if err := reader.Begin(); err != nil {
		t.Fatal(err)
	}
	if n := countRows(t, reader, "t"); n != 0 {
		t.Fatalf("reader txn sees %d rows, want 0", n)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := countRows(t, reader, "t"); n != 0 {
		t.Fatalf("reader txn snapshot moved: sees %d rows after concurrent commit", n)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	// New statement, new snapshot: the commit is now visible.
	if n := countRows(t, reader, "t"); n != 3 {
		t.Fatalf("reader sees %d rows after commit, want 3", n)
	}
}

// Rolled-back heap rows are compacted out of the file at checkpoint, and
// the compacted table recovers cleanly.
func TestCheckpointCompactsDeadRows(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir, Options{DOP: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (a BIGINT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (2)`)
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `INSERT INTO t VALUES (10), (11), (12)`)
	if err := db.Rollback(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `INSERT INTO t VALUES (3)`)
	mustExec(t, db, `CHECKPOINT`)
	td, err := db.table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := td.heap.RowCount(); got != 3 {
		t.Fatalf("physical rows after compacting checkpoint = %d, want 3", got)
	}
	res := mustExec(t, db, `SELECT a FROM t ORDER BY a`)
	want := []int64{1, 2, 3}
	for i, r := range res.Rows {
		if r[0].I != want[i] {
			t.Fatalf("row %d = %d, want %d", i, r[0].I, want[i])
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{DOP: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n, _ := db2.TableRowCount("t"); n != 3 {
		t.Fatalf("rows after reopen = %d, want 3", n)
	}
}

// Concurrent sessions hammer commits and rollbacks while a reader
// continuously asserts snapshot-atomic batch visibility; a reopen then
// proves recovery replays exactly the committed transactions.
func TestConcurrentTransactionStress(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir, Options{DOP: 4})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (w BIGINT, i BIGINT)`)

	const (
		writers       = 4
		txnsPerWriter = 25
		batch         = 8
	)
	var committed [writers]int64
	var wg sync.WaitGroup
	stopRead := make(chan struct{})
	readerDone := make(chan struct{})

	// Reader: every committed transaction inserts a whole batch, so any
	// snapshot must see a multiple of the batch size.
	readerErr := make(chan error, 1)
	go func() {
		defer close(readerDone)
		s := db.NewSession()
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			res, err := s.Exec(`SELECT COUNT(*) FROM t`)
			if err != nil {
				readerErr <- err
				return
			}
			if n := res.Rows[0][0].I; n%batch != 0 {
				readerErr <- fmt.Errorf("snapshot saw %d rows; batches of %d must be atomic", n, batch)
				return
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			for i := 0; i < txnsPerWriter; i++ {
				if err := s.Begin(); err != nil {
					t.Error(err)
					return
				}
				rows := make([]sqltypes.Row, batch)
				for j := range rows {
					rows[j] = sqltypes.Row{sqltypes.NewInt(int64(w)), sqltypes.NewInt(int64(i*batch + j))}
				}
				if err := s.InsertRows("t", rows); err != nil {
					t.Error(err)
					return
				}
				// Roll back every third transaction.
				if i%3 == 2 {
					if err := s.Rollback(); err != nil {
						t.Error(err)
						return
					}
				} else {
					if err := s.Commit(); err != nil {
						t.Error(err)
						return
					}
					committed[w] += batch
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopRead)
	<-readerDone
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}

	var want int64
	for _, c := range committed {
		want += c
	}
	if n, _ := db.TableRowCount("t"); n != want {
		t.Fatalf("committed rows = %d, want %d", n, want)
	}
	// Crash-style reopen (no checkpoint): recovery must rebuild exactly
	// the committed transactions from the log.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{DOP: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n, _ := db2.TableRowCount("t"); n != want {
		t.Fatalf("rows after recovery = %d, want %d", n, want)
	}
}

// Writers in other sessions never block a scan: a reader's statement
// snapshot stays consistent while inserts land between its statements.
func TestScanRunsDuringOpenTransaction(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a BIGINT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (2), (3), (4)`)
	w := db.NewSession()
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exec(`INSERT INTO t VALUES (5)`); err != nil {
		t.Fatal(err)
	}
	// The writer's transaction stays open — the reader's SELECT and
	// ANALYZE must complete without waiting for it.
	r := db.NewSession()
	if n := countRows(t, r, "t"); n != 4 {
		t.Fatalf("scan under open txn saw %d rows, want 4", n)
	}
	if _, err := r.Exec(`ANALYZE TABLE t`); err != nil {
		t.Fatalf("ANALYZE blocked or failed under open txn: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := countRows(t, r, "t"); n != 5 {
		t.Fatalf("scan after commit saw %d rows, want 5", n)
	}
}
