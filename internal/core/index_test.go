package core

import (
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/sqltypes"
)

// drainOp runs a serial operator to completion.
func drainOp(t *testing.T, db *Database, op exec.Operator) []sqltypes.Row {
	t.Helper()
	snap := db.tm.readSnapshot()
	defer db.tm.releaseSnapshot(snap)
	rows, err := exec.Run(db.execContext(snap), op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestCreateIndexBuildAndScan: bulk build over existing rows, maintenance
// of later inserts, and point/range IndexScan correctness across reopen.
func TestCreateIndexBuildAndScan(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{DOP: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE g (id INT, pos INT, tag VARCHAR(16))`)
	for i := 0; i < 5000; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO g VALUES (%d, %d, 'tag%d')`, i, (i*7919)%5000, i%10))
	}
	mustExec(t, db, `CREATE INDEX idx_pos ON g(pos)`)

	// Rows inserted AFTER the build must be maintained transactionally.
	mustExec(t, db, `INSERT INTO g VALUES (5000, 123, 'late')`)

	def := db.Catalog().Get("g")
	if def.IndexByName("idx_pos") == nil {
		t.Fatal("catalog lost the index")
	}
	lo, hi := sqltypes.NewInt(100), sqltypes.NewInt(200)
	db.mu.RLock()
	op, err := db.IndexScan(def, "idx_pos", &lo, &hi, true, false)
	db.mu.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	rows := drainOp(t, db, op)
	want := 0
	for i := 0; i < 5000; i++ {
		if p := (i * 7919) % 5000; p >= 100 && p < 200 {
			want++
		}
	}
	want++ // the late row at pos=123
	if len(rows) != want {
		t.Fatalf("index range scan returned %d rows, want %d", len(rows), want)
	}
	// Index order: ascending pos.
	for i := 1; i < len(rows); i++ {
		if sqltypes.Compare(rows[i-1][1], rows[i][1]) > 0 {
			t.Fatalf("index scan out of order at %d: %v > %v", i, rows[i-1][1], rows[i][1])
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the index file and catalog entry survive; scans still agree.
	db, err = Open(dir, Options{DOP: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	def = db.Catalog().Get("g")
	db.mu.RLock()
	op, err = db.IndexScan(def, "idx_pos", &lo, &hi, true, false)
	db.mu.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(drainOp(t, db, op)); got != want {
		t.Fatalf("after reopen: %d rows, want %d", got, want)
	}
	// DROP INDEX removes catalog entry and file.
	mustExec(t, db, `DROP INDEX idx_pos ON g`)
	if db.Catalog().Get("g").IndexByName("idx_pos") != nil {
		t.Fatal("catalog kept the dropped index")
	}
	db.mu.RLock()
	_, err = db.IndexScan(def, "idx_pos", &lo, &hi, true, false)
	db.mu.RUnlock()
	if err == nil {
		t.Fatal("IndexScan over a dropped index succeeded")
	}
}

// TestIndexRollbackUndo: entries of rolled-back inserts never surface, and
// an aborted transaction does not wedge later index scans.
func TestIndexRollbackUndo(t *testing.T) {
	db, err := Open(t.TempDir(), Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE r (v INT)`)
	for i := 0; i < 100; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO r VALUES (%d)`, i))
	}
	mustExec(t, db, `CREATE INDEX idx_v ON r(v)`)
	s := db.NewSession()
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO r VALUES (42)`); err != nil {
		t.Fatal(err)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	lo, hi := sqltypes.NewInt(42), sqltypes.NewInt(42)
	def := db.Catalog().Get("r")
	db.mu.RLock()
	op, err := db.IndexScan(def, "idx_v", &lo, &hi, true, true)
	db.mu.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(drainOp(t, db, op)); got != 1 {
		t.Fatalf("point lookup after rollback: %d rows, want 1", got)
	}
}
