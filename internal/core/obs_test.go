package core

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sqlparse"
)

// openJoinDB opens a database tuned so the standard join workload runs
// parallel (DOP 4), spills (tiny join budget) and keeps its Bloom
// filters, then loads the shared reads/aligns tables.
func openJoinDB(t *testing.T, opts Options) *Database {
	t.Helper()
	if opts.DOP == 0 {
		opts.DOP = 4
	}
	if opts.ParallelThreshold == 0 {
		opts.ParallelThreshold = 256
	}
	if opts.JoinMemoryBudget == 0 {
		opts.JoinMemoryBudget = 4 << 10
	}
	if opts.JoinPartitions == 0 {
		opts.JoinPartitions = 8
	}
	db, err := Open(filepath.Join(t.TempDir(), "db"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	loadJoinTables(t, db, 3000, 2500, 500)
	return db
}

const spillingJoinSQL = `SELECT payload, tag FROM reads JOIN aligns ON reads.k = aligns.k WHERE aligns.k < 40`

// profiledQuery runs one SELECT through the instrumented path and
// returns the executed plan tree with its accumulated profiles.
func profiledQuery(t *testing.T, db *Database, sql string, timed bool) (*Result, *plan.Node) {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := stmt.(*sqlparse.Select)
	if !ok {
		t.Fatalf("not a SELECT: %q", sql)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	snap := db.tm.readSnapshot()
	defer db.tm.releaseSnapshot(snap)
	res, node, err := db.runSelectProfiled(sel, snap, timed)
	if err != nil {
		t.Fatal(err)
	}
	return res, node
}

// collectProfiles gathers the distinct profiles of a plan tree.
func collectProfiles(n *plan.Node) []*obs.OpProfile {
	seen := map[*obs.OpProfile]bool{}
	var out []*obs.OpProfile
	var walk func(*plan.Node)
	walk = func(n *plan.Node) {
		if n == nil {
			return
		}
		if n.Prof != nil && !seen[n.Prof] {
			seen[n.Prof] = true
			out = append(out, n.Prof)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// TestExplainAnalyzeSpillingJoin is the tentpole acceptance test:
// EXPLAIN ANALYZE on a spilling, Bloom-filtered, DOP-4 partitioned join
// must report per-operator actual row counts, actual-vs-estimate ratios
// on every node, per-operator wall time, and spill/Bloom detail lines.
func TestExplainAnalyzeSpillingJoin(t *testing.T) {
	db := openJoinDB(t, Options{})
	res := mustExec(t, db, "EXPLAIN ANALYZE "+spillingJoinSQL)
	text := res.Plan
	if !strings.Contains(text, "EXPLAIN ANALYZE (total ") {
		t.Fatalf("missing header:\n%s", text)
	}
	if !strings.Contains(text, "Hash Match (Partitioned Inner Join)") {
		t.Fatalf("expected the partitioned join plan:\n%s", text)
	}
	for _, want := range []string{"actual=", "time=", "(self ", "spill: ", "bloom: ", "checked", "dropped"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Every operator line carries an actual-vs-estimate ratio.
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, "|--") {
			continue
		}
		if !strings.Contains(line, "off by ") {
			t.Errorf("node line without estimate ratio: %q", line)
		}
	}
	// Spill detail must carry a real byte volume.
	if !strings.Contains(text, "runs") {
		t.Errorf("spill line missing run count:\n%s", text)
	}
	// The rendered rows mirror the plan text.
	if len(res.Rows) != strings.Count(strings.TrimRight(text, "\n"), "\n")+1 {
		t.Errorf("result rows (%d) do not mirror plan lines:\n%s", len(res.Rows), text)
	}

	// The statement actually executed: the join root's profile counted
	// the real result cardinality, and the same query run directly
	// returns that many rows.
	direct := mustExec(t, db, spillingJoinSQL)
	if !strings.Contains(text, fmt.Sprintf("%d rows returned", len(direct.Rows))) {
		t.Errorf("header does not report the executed row count %d:\n%s", len(direct.Rows), text)
	}
}

// TestExplainAnalyzeNonSelect: only SELECT can be analyzed.
func TestExplainAnalyzeNonSelect(t *testing.T) {
	db := openTestDB(t)
	stmt, err := sqlparse.Parse("EXPLAIN ANALYZE SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	ex := stmt.(*sqlparse.Explain)
	ex.Stmt = &sqlparse.Checkpoint{}
	if _, err := db.ExecStmt(ex); err == nil {
		t.Fatal("EXPLAIN ANALYZE of a non-SELECT succeeded")
	}
}

// assertZeroStruct recursively checks every numeric field of a struct
// is zero, naming offenders by path.
func assertZeroStruct(t *testing.T, v reflect.Value, path string) {
	t.Helper()
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			assertZeroStruct(t, v.Field(i), path+"."+v.Type().Field(i).Name)
		}
	case reflect.Int, reflect.Int64, reflect.Uint64, reflect.Float64:
		if v.Convert(reflect.TypeOf(float64(0))).Float() != 0 {
			t.Errorf("field %s = %v, want 0", path, v)
		}
	case reflect.Array, reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			assertZeroStruct(t, v.Index(i), fmt.Sprintf("%s[%d]", path, i))
		}
	}
}

// TestExecStatsSnapshotSubComplete is the Sub-audit regression test: on
// a database whose counters have all been driven (joins, sorts,
// aggregates, vectorized scans, spills), a snapshot minus itself must
// zero every field — a field Sub copies instead of subtracting shows up
// as nonzero — and a warm-minus-cold delta across a no-op window is
// likewise all zeros.
func TestExecStatsSnapshotSubComplete(t *testing.T) {
	db := openJoinDB(t, Options{
		SortMemoryBudget: 4 << 10,
		AggMemoryBudget:  4 << 10,
	})
	// Drive every operator family, with spills.
	mustExec(t, db, spillingJoinSQL)
	mustExec(t, db, `SELECT payload FROM reads ORDER BY payload`)
	mustExec(t, db, `SELECT k, COUNT(*) FROM reads GROUP BY k`)

	snap := db.ExecStats()
	if snap.Join.SpilledBuildRows == 0 || snap.Sort.SpilledRows == 0 || snap.Agg.SpilledRows == 0 {
		t.Fatalf("workload did not drive spill counters: %+v", snap)
	}
	if snap.Scan.Rows == 0 || snap.Pool.Hits == 0 {
		t.Fatalf("workload did not drive scan/pool counters: %+v", snap)
	}
	assertZeroStruct(t, reflect.ValueOf(snap.Sub(snap)), "self-delta")

	// Sub against a zero snapshot must reproduce the snapshot exactly —
	// a field missing from Sub would read back as zero.
	if got := snap.Sub(ExecStatsSnapshot{}); !reflect.DeepEqual(got, snap) {
		t.Errorf("Sub(zero) altered the snapshot:\n got %+v\nwant %+v", got, snap)
	}

	// Warm-minus-cold across a no-op window.
	a := db.ExecStats()
	b := db.ExecStats()
	assertZeroStruct(t, reflect.ValueOf(b.Sub(a)), "noop-delta")
}

// TestMetricsRegistrySnapshot: the registry exposes the engine counters
// under stable names and tracks the live values.
func TestMetricsRegistrySnapshot(t *testing.T) {
	db := openJoinDB(t, Options{SlowQueryThreshold: time.Nanosecond})
	mustExec(t, db, spillingJoinSQL)
	mustExec(t, db, spillingJoinSQL) // warm pass: pool hits
	m := db.Metrics()
	for _, name := range []string{
		"pool.hits", "pool.misses", "pool.evictions",
		"wal.syncs",
		"exec.join.build_rows", "exec.join.spilled_partitions", "exec.join.bloom_checks",
		"exec.sort.sorts", "exec.agg.spilled_rows",
		"scan.rows", "scan.batches",
		"integrity.pages_verified", "integrity.checksum_failures",
		"checkpoint.count", "vacuum.runs",
		"planner.path_picks.index", "planner.path_picks.zonemap", "planner.path_picks.full",
		"query.count", "query.slow_count",
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("metric %q not registered", name)
		}
	}
	if m["exec.join.build_rows"] == 0 || m["scan.rows"] == 0 || m["pool.hits"] == 0 {
		t.Errorf("live counters not reflected: %+v", m)
	}
	if m["query.count"] == 0 {
		t.Error("query history did not count the statement")
	}
	if m["planner.path_picks.full"] == 0 {
		t.Error("planner path picks not counted")
	}
	stats := db.ExecStats()
	if m2 := db.Metrics(); m2["exec.join.build_rows"] != stats.Join.BuildRows {
		t.Errorf("metrics (%d) disagree with ExecStats (%d)", m2["exec.join.build_rows"], stats.Join.BuildRows)
	}
}

// TestQueryHistoryAndSlowLog: the ring records statements newest-first
// with durations and spill volume; statements over the threshold keep
// their full profile in the slow log.
func TestQueryHistoryAndSlowLog(t *testing.T) {
	db := openJoinDB(t, Options{SlowQueryThreshold: time.Nanosecond, QueryHistorySize: 4})
	mustExec(t, db, spillingJoinSQL)
	mustExec(t, db, `SELECT COUNT(*) FROM reads`)

	hist := db.QueryHistory()
	if len(hist) < 2 {
		t.Fatalf("history has %d records", len(hist))
	}
	if hist[0].SQL != `SELECT COUNT(*) FROM reads` {
		t.Errorf("newest-first order violated: %q", hist[0].SQL)
	}
	if hist[0].Rows != 1 || hist[0].Duration <= 0 {
		t.Errorf("record not filled: %+v", hist[0])
	}
	if hist[1].SQL != spillingJoinSQL {
		t.Errorf("missing join statement: %q", hist[1].SQL)
	}
	if hist[1].SpillBytes == 0 {
		t.Errorf("spilling join recorded no spill bytes: %+v", hist[1])
	}
	if hist[1].Profile != "" {
		t.Error("history entries must not retain profiles")
	}

	slow := db.SlowQueries()
	if len(slow) == 0 {
		t.Fatal("nanosecond threshold captured no slow queries")
	}
	last := slow[len(slow)-1]
	if !strings.Contains(last.Profile, "actual=") {
		t.Errorf("slow record missing its profile: %+v", last)
	}

	// History ring respects its capacity.
	for i := 0; i < 10; i++ {
		mustExec(t, db, `SELECT COUNT(*) FROM aligns`)
	}
	if got := len(db.QueryHistory()); got != 4 {
		t.Errorf("ring holds %d records, capacity 4", got)
	}
}

// TestDisableInstrumentation: with the knob set, plain SELECTs skip the
// profile wrappers (no spill bytes in the history), but EXPLAIN ANALYZE
// still instruments its statement.
func TestDisableInstrumentation(t *testing.T) {
	db := openJoinDB(t, Options{DisableInstrumentation: true})
	mustExec(t, db, spillingJoinSQL)
	hist := db.QueryHistory()
	if len(hist) == 0 {
		t.Fatal("no history")
	}
	if hist[0].SpillBytes != 0 {
		t.Errorf("uninstrumented statement reported spill bytes: %+v", hist[0])
	}
	res := mustExec(t, db, "EXPLAIN ANALYZE "+spillingJoinSQL)
	if !strings.Contains(res.Plan, "actual=") || !strings.Contains(res.Plan, "spill: ") {
		t.Errorf("EXPLAIN ANALYZE lost instrumentation under the knob:\n%s", res.Plan)
	}
}

// TestProfilesReconcileWithExecStats is the satellite-3 reconciliation
// check plus the concurrency soak: N writer sessions and M EXPLAIN
// ANALYZE readers run together (race-detector clean), registry counters
// stay monotonic throughout, and on a quiet database the per-operator
// profile totals of one instrumented query equal the global ExecStats
// deltas it produced.
func TestProfilesReconcileWithExecStats(t *testing.T) {
	db := openJoinDB(t, Options{})

	// Concurrency soak: 3 writers, 2 analyze readers, 1 metrics poller.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.NewSession()
			for i := 0; i < 20; i++ {
				if _, err := sess.Exec(fmt.Sprintf(
					`INSERT INTO reads VALUES (%d, 'w%d-%d')`, i%500, w, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.NewSession()
			for i := 0; i < 5; i++ {
				if _, err := sess.Exec("EXPLAIN ANALYZE " + spillingJoinSQL); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		names := []string{"exec.join.build_rows", "pool.hits", "query.count", "wal.syncs"}
		prev := map[string]int64{}
		for {
			m := db.Metrics()
			for _, n := range names {
				if m[n] < prev[n] {
					t.Errorf("metric %s went backwards: %d -> %d", n, prev[n], m[n])
				}
				prev[n] = m[n]
			}
			select {
			case <-stop:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(stop)
	pollWG.Wait()

	// Quiet reconciliation: one instrumented query's profiles must sum to
	// exactly the ExecStats movement it caused.
	before := db.ExecStats()
	res, node := profiledQuery(t, db, spillingJoinSQL, true)
	delta := db.ExecStats().Sub(before)

	var rows, spillRows, spillRuns, bloomChecks, bloomDrops int64
	for _, p := range collectProfiles(node) {
		rows += p.Rows.Load()
		spillRows += p.SpillRows.Load()
		spillRuns += p.SpillRuns.Load()
		bloomChecks += p.BloomChecks.Load()
		bloomDrops += p.BloomDrops.Load()
	}
	if rows == 0 {
		t.Fatal("no profile rows recorded")
	}
	if root := node.Prof; root == nil || root.Rows.Load() != int64(len(res.Rows)) {
		t.Errorf("root profile rows != result rows (%d)", len(res.Rows))
	}
	wantSpillRows := delta.Join.SpilledBuildRows + delta.Join.SpilledProbeRows +
		delta.Sort.SpilledRows + delta.Agg.SpilledRows
	if spillRows != wantSpillRows {
		t.Errorf("profile spill rows = %d, ExecStats delta = %d", spillRows, wantSpillRows)
	}
	wantRuns := delta.Join.SpilledPartitions + delta.Sort.Runs + delta.Agg.SpilledPartitions
	if spillRuns != wantRuns {
		t.Errorf("profile spill runs = %d, ExecStats delta = %d", spillRuns, wantRuns)
	}
	if bloomChecks != delta.Join.BloomChecks || bloomDrops != delta.Join.BloomDrops {
		t.Errorf("profile bloom %d/%d, ExecStats delta %d/%d",
			bloomChecks, bloomDrops, delta.Join.BloomChecks, delta.Join.BloomDrops)
	}
	if spillRows == 0 || bloomChecks == 0 {
		t.Errorf("query did not exercise spill (%d) / bloom (%d)", spillRows, bloomChecks)
	}
}
