package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// Multi-version concurrency control.
//
// Every inserted row is stamped with the transaction that created it.
// Heap rows are identified by their global row index and tracked as
// contiguous *version spans* (an in-memory version chain over the
// existing heap pages); clustered rows are tracked by primary key in a
// recent-key map. A statement reads under a Snapshot — the highest
// commit sequence published when it began — and sees exactly the rows
// whose creating transaction committed at or before that horizon, plus
// its own uncommitted writes. Readers therefore never block behind
// writers and writers never block behind readers; write-write conflicts
// are limited to per-table latches held for the duration of one row
// insert.
//
// Commit sequence numbers are assigned at the WAL append point (the only
// serialized step of the commit pipeline); durability comes from the
// WAL's leader/follower group fsync, and visibility is published after
// the flush returns. Because flushes can finish out of order, published
// commits above a gap stay invisible to new snapshots until the gap
// fills — a snapshot is always a prefix of the commit order.
//
// A background vacuum folds spans older than the oldest live snapshot
// into the table's all-visible floor and drops key-map entries, so the
// version metadata stays proportional to recent write activity. Rows of
// aborted transactions stay in the heap as dead spans until the next
// checkpoint compacts them away (the durable heap never contains dead
// rows — recovery only replays committed transactions).

// Snapshot fixes the commit horizon a statement or transaction reads at.
type Snapshot struct {
	seq   uint64 // commits with cseq <= seq are visible
	txnID uint64 // own uncommitted writes are visible (0 = plain reader)
}

type spanState uint8

const (
	spanPending spanState = iota
	spanCommitted
	spanDead
)

// verSpan is a contiguous run of heap rows created by one transaction.
type verSpan struct {
	start, end int64 // global row indexes [start, end)
	txnID      uint64
	cseq       uint64 // commit sequence once committed
	state      spanState
}

// rowRange is a half-open run of visible row indexes.
type rowRange struct{ start, end int64 }

// keyVer is the version stamp of a recently-inserted clustered key.
type keyVer struct {
	txnID uint64
	cseq  uint64
	state spanState
}

// tableVersions is the per-table MVCC state.
type tableVersions struct {
	mu       sync.Mutex
	floor    int64      // heap rows < floor are visible to everyone unless dead
	spans    []*verSpan // rows [floor, insertSeq), ordered, contiguous
	dead     []rowRange // aborted rows below the floor, sorted, disjoint
	deadRows int64      // total dead rows (dead list + dead-state spans)
	keys     map[string]*keyVer
	keyCount atomic.Int64 // fast empty check on the clustered scan path
}

func newTableVersions(rowCount int64) *tableVersions {
	return &tableVersions{floor: rowCount, keys: map[string]*keyVer{}}
}

// noteInsert records one heap row appended by t at index idx, extending
// the transaction's trailing span when the insert is contiguous. The
// returned span is non-nil only when a new span was created (the caller
// links it to the transaction for the commit/abort flip). Callers hold
// the table's write latch, so appends arrive in index order.
func (tv *tableVersions) noteInsert(txnID uint64, idx int64) *verSpan {
	tv.mu.Lock()
	defer tv.mu.Unlock()
	if n := len(tv.spans); n > 0 {
		last := tv.spans[n-1]
		if last.state == spanPending && last.txnID == txnID && last.end == idx {
			last.end++
			return nil
		}
	}
	sp := &verSpan{start: idx, end: idx + 1, txnID: txnID, state: spanPending}
	tv.spans = append(tv.spans, sp)
	return sp
}

// noteKey records a pending clustered-key insert.
func (tv *tableVersions) noteKey(txnID uint64, key []byte) {
	tv.mu.Lock()
	tv.keys[string(key)] = &keyVer{txnID: txnID, state: spanPending}
	tv.keyCount.Store(int64(len(tv.keys)))
	tv.mu.Unlock()
}

// commit publishes a transaction's spans and keys at commit sequence
// cseq. Runs after the WAL flush that made the commit durable.
func (tv *tableVersions) commit(spans []*verSpan, keys [][]byte, cseq uint64) {
	tv.mu.Lock()
	for _, sp := range spans {
		sp.state = spanCommitted
		sp.cseq = cseq
	}
	for _, k := range keys {
		if e := tv.keys[string(k)]; e != nil {
			e.state = spanCommitted
			e.cseq = cseq
		}
	}
	tv.mu.Unlock()
}

// abortSpans marks a transaction's heap spans dead. The rows stay in the
// heap, invisible to every snapshot, until checkpoint compaction.
func (tv *tableVersions) abortSpans(spans []*verSpan) {
	tv.mu.Lock()
	for _, sp := range spans {
		if sp.state != spanDead {
			sp.state = spanDead
			tv.deadRows += sp.end - sp.start
		}
	}
	tv.mu.Unlock()
}

// dropKeys removes key entries after the caller has physically deleted
// the keys from the tree (rollback): an absent entry means "visible", so
// the tree delete must land first.
func (tv *tableVersions) dropKeys(keys [][]byte) {
	tv.mu.Lock()
	for _, k := range keys {
		delete(tv.keys, string(k))
	}
	tv.keyCount.Store(int64(len(tv.keys)))
	tv.mu.Unlock()
}

// markKeysDead hides keys that could not be physically removed (failed
// commit flush or failed undo on a poisoned database).
func (tv *tableVersions) markKeysDead(keys [][]byte) {
	tv.mu.Lock()
	for _, k := range keys {
		if e := tv.keys[string(k)]; e != nil {
			e.state = spanDead
		}
	}
	tv.mu.Unlock()
}

// deadCount returns the number of dead (aborted) heap rows.
func (tv *tableVersions) deadCount() int64 {
	tv.mu.Lock()
	defer tv.mu.Unlock()
	return tv.deadRows
}

// spanVisible decides one span under a snapshot. snap == nil means
// "latest committed" (recovery, TVF side scans).
func spanVisible(state spanState, txnID, cseq uint64, snap *Snapshot) bool {
	switch state {
	case spanDead:
		return false
	case spanPending:
		return snap != nil && snap.txnID != 0 && snap.txnID == txnID
	default: // committed
		return snap == nil || cseq <= snap.seq
	}
}

// visibleRanges renders the rows of this table visible under snap as
// sorted disjoint row-index ranges — computed once per scan open, so the
// per-row filter is a pointer walk.
func (tv *tableVersions) visibleRanges(snap *Snapshot) []rowRange {
	tv.mu.Lock()
	defer tv.mu.Unlock()
	out := make([]rowRange, 0, len(tv.dead)+len(tv.spans)+1)
	cur := int64(0)
	for _, d := range tv.dead {
		if d.start > cur {
			out = append(out, rowRange{cur, d.start})
		}
		cur = d.end
	}
	if cur < tv.floor {
		out = append(out, rowRange{cur, tv.floor})
	}
	for _, sp := range tv.spans {
		if !spanVisible(sp.state, sp.txnID, sp.cseq, snap) {
			continue
		}
		if n := len(out); n > 0 && out[n-1].end == sp.start {
			out[n-1].end = sp.end
		} else {
			out = append(out, rowRange{sp.start, sp.end})
		}
	}
	return out
}

// keyVisible decides a clustered key under a snapshot. Keys with no
// entry are old enough to be visible to everyone.
func (tv *tableVersions) keyVisible(key []byte, snap *Snapshot) bool {
	if tv.keyCount.Load() == 0 {
		return true
	}
	tv.mu.Lock()
	e, ok := tv.keys[string(key)]
	var cp keyVer
	if ok {
		cp = *e
	}
	tv.mu.Unlock()
	if !ok {
		return true
	}
	return spanVisible(cp.state, cp.txnID, cp.cseq, snap)
}

// invisibleKeys counts recent clustered keys not visible under snap —
// subtracted from the physical key count for a snapshot-consistent
// cardinality.
func (tv *tableVersions) invisibleKeys(snap *Snapshot) int64 {
	if tv.keyCount.Load() == 0 {
		return 0
	}
	tv.mu.Lock()
	defer tv.mu.Unlock()
	var n int64
	for _, e := range tv.keys {
		if !spanVisible(e.state, e.txnID, e.cseq, snap) {
			n++
		}
	}
	return n
}

// prune advances the all-visible floor over leading spans resolved at or
// below horizon and drops key entries every live snapshot can see — the
// vacuum step.
func (tv *tableVersions) prune(horizon uint64) {
	tv.mu.Lock()
	defer tv.mu.Unlock()
	folded := 0
	for _, sp := range tv.spans {
		if sp.start != tv.floor {
			break // defensive: spans must tile from the floor
		}
		if sp.state == spanCommitted && sp.cseq <= horizon {
			tv.floor = sp.end
			folded++
			continue
		}
		if sp.state == spanDead {
			// Fold into the permanent dead list (kept sorted: spans are
			// ordered and everything below the floor already is).
			if n := len(tv.dead); n > 0 && tv.dead[n-1].end == sp.start {
				tv.dead[n-1].end = sp.end
			} else {
				tv.dead = append(tv.dead, rowRange{sp.start, sp.end})
			}
			tv.floor = sp.end
			folded++
			continue
		}
		break // pending, or committed above the horizon
	}
	if folded > 0 {
		n := copy(tv.spans, tv.spans[folded:])
		for j := n; j < len(tv.spans); j++ {
			tv.spans[j] = nil
		}
		tv.spans = tv.spans[:n]
	}
	if len(tv.keys) > 0 {
		for k, e := range tv.keys {
			if e.state == spanCommitted && e.cseq <= horizon {
				delete(tv.keys, k)
			}
		}
		tv.keyCount.Store(int64(len(tv.keys)))
	}
}

// resetAtCheckpoint clears all version metadata after a checkpoint
// compaction: every surviving row is committed and durable.
func (tv *tableVersions) resetAtCheckpoint(rowCount int64) {
	tv.mu.Lock()
	tv.floor = rowCount
	tv.spans = nil
	tv.dead = nil
	tv.deadRows = 0
	tv.keys = map[string]*keyVer{}
	tv.keyCount.Store(0)
	tv.mu.Unlock()
}

// firstDead returns the lowest dead row index, or -1 when none. Called
// at checkpoint with all spans resolved.
func (tv *tableVersions) firstDead() int64 {
	tv.mu.Lock()
	defer tv.mu.Unlock()
	first := int64(-1)
	if len(tv.dead) > 0 {
		first = tv.dead[0].start
	}
	for _, sp := range tv.spans {
		if sp.state == spanDead && (first < 0 || sp.start < first) {
			first = sp.start
		}
	}
	return first
}

// txnManager hands out transaction ids, commit sequences and snapshots.
type txnManager struct {
	mu             sync.Mutex
	nextTxnID      uint64
	nextCommitSeq  uint64          // last assigned commit sequence
	visibleSeq     uint64          // highest contiguous published commit
	published      map[uint64]bool // commits published above visibleSeq
	snapshots      map[uint64]int  // live snapshot seq -> refcount
	activeExplicit int             // open BEGIN...COMMIT transactions
}

func newTxnManager() *txnManager {
	return &txnManager{published: map[uint64]bool{}, snapshots: map[uint64]int{}}
}

// begin allocates a transaction id and its snapshot.
func (tm *txnManager) begin(explicit bool) (id uint64, snap *Snapshot) {
	tm.mu.Lock()
	tm.nextTxnID++
	id = tm.nextTxnID
	snap = &Snapshot{seq: tm.visibleSeq, txnID: id}
	tm.snapshots[snap.seq]++
	if explicit {
		tm.activeExplicit++
	}
	tm.mu.Unlock()
	return id, snap
}

// readSnapshot registers a statement-scoped snapshot (no transaction).
func (tm *txnManager) readSnapshot() *Snapshot {
	tm.mu.Lock()
	snap := &Snapshot{seq: tm.visibleSeq}
	tm.snapshots[snap.seq]++
	tm.mu.Unlock()
	return snap
}

// releaseSnapshot drops a snapshot's pin on the vacuum horizon.
func (tm *txnManager) releaseSnapshot(snap *Snapshot) {
	if snap == nil {
		return
	}
	tm.mu.Lock()
	if n := tm.snapshots[snap.seq]; n > 1 {
		tm.snapshots[snap.seq] = n - 1
	} else {
		delete(tm.snapshots, snap.seq)
	}
	tm.mu.Unlock()
}

// endExplicit retires one explicit transaction.
func (tm *txnManager) endExplicit() {
	tm.mu.Lock()
	tm.activeExplicit--
	tm.mu.Unlock()
}

// explicitOpen reports whether any session holds an open explicit
// transaction (checkpoint and DDL refuse to run then).
func (tm *txnManager) explicitOpen() bool {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.activeExplicit > 0
}

// publish marks commit sequence c visible and advances the contiguous
// horizon new snapshots read at.
func (tm *txnManager) publish(c uint64) {
	tm.mu.Lock()
	tm.published[c] = true
	for tm.published[tm.visibleSeq+1] {
		tm.visibleSeq++
		delete(tm.published, tm.visibleSeq)
	}
	tm.mu.Unlock()
}

// horizon is the oldest commit sequence any live snapshot can see — the
// vacuum bound. With no snapshots open it is the current visible head.
func (tm *txnManager) horizon() uint64 {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	h := tm.visibleSeq
	for seq := range tm.snapshots {
		if seq < h {
			h = seq
		}
	}
	return h
}

// vacuumInterval paces the background version pruner.
const vacuumInterval = 25 * time.Millisecond

// vacuumLoop prunes version metadata until stop is closed.
func (db *Database) vacuumLoop(stop <-chan struct{}) {
	t := time.NewTicker(vacuumInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			db.Vacuum()
		}
	}
}

// Vacuum runs one synchronous vacuum pass: spans and clustered-key
// entries older than the oldest live snapshot fold into each table's
// all-visible floor. Exposed for tests and benchmarks; the background
// loop calls it continuously.
func (db *Database) Vacuum() {
	db.vacuumRuns.Add(1)
	horizon := db.tm.horizon()
	db.mu.RLock()
	tds := make([]*tableData, 0, len(db.tables))
	for _, td := range db.tables {
		tds = append(tds, td)
	}
	db.mu.RUnlock()
	for _, td := range tds {
		td.versions.prune(horizon)
	}
}
