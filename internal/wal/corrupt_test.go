package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// writeSampleLog writes sampleRecords to a fresh current-format log and
// returns its path plus the per-record byte offsets (header start) in the
// file, so tests can target specific records for corruption.
func writeSampleLog(t *testing.T) (string, []int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seq.wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	off := int64(walMagicLen)
	for _, r := range sampleRecords() {
		offs = append(offs, off)
		off += walHeaderLen + int64(len(encodeRecord(r)))
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, offs
}

// TestMidLogCorruptionIsNotTornTail is the core discrimination: damage to
// a record with intact records after it must surface ErrCorruptLog, not
// silently drop the committed tail the way a torn-tail stop would.
func TestMidLogCorruptionIsNotTornTail(t *testing.T) {
	path, offs := writeSampleLog(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the second record (records 3..6 stay intact).
	data[offs[1]+walHeaderLen] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(path)
	if err != nil {
		t.Fatal(err) // open must still succeed; the damage surfaces at Replay
	}
	defer w.Close()
	err = w.Replay(func(Record) error { return nil })
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("mid-log corruption replay err = %v, want ErrCorruptLog", err)
	}
}

// TestOutOfSequenceRecordIsCorrupt: an intact record whose sequence number
// skips ahead means records were lost — corruption even with nothing else
// damaged.
func TestOutOfSequenceRecordIsCorrupt(t *testing.T) {
	path, offs := writeSampleLog(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite record 2's sequence from 2 to 9 and fix up its CRC so the
	// record itself stays intact.
	o := offs[1]
	n := int64(binary.LittleEndian.Uint32(data[o:]))
	binary.LittleEndian.PutUint64(data[o+8:], 9)
	payload := data[o+walHeaderLen : o+walHeaderLen+n]
	binary.LittleEndian.PutUint32(data[o+4:], recordCRC(data[o+8:o+16], payload))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Replay(func(Record) error { return nil })
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("out-of-sequence replay err = %v, want ErrCorruptLog", err)
	}
}

// TestCorruptFinalRecordIsTornTail: the same damage applied to the LAST
// record has nothing intact after it, so it is indistinguishable from a
// crash mid-append and replay must stop cleanly.
func TestCorruptFinalRecordIsTornTail(t *testing.T) {
	path, offs := writeSampleLog(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	last := offs[len(offs)-1]
	data[last+walHeaderLen] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	n := 0
	if err := w.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatalf("corrupt-final replay err = %v, want clean stop", err)
	}
	if want := len(offs) - 1; n != want {
		t.Errorf("replayed %d records, want %d", n, want)
	}
}

// TestTruncateRestartsSequence: after Truncate the next generation starts
// at sequence 1 again and replays cleanly.
func TestTruncateRestartsSequence(t *testing.T) {
	w, _ := openTestWAL(t)
	defer w.Close()
	for _, r := range sampleRecords() {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Type: RecCommit, Txn: 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := w.Replay(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Txn != 7 {
		t.Errorf("post-truncate replay = %+v", got)
	}
}

// writeLegacyLog hand-crafts a pre-sequence-number log: no magic, 8-byte
// headers (u32 length, u32 CRC over payload only).
func writeLegacyLog(t *testing.T, recs []Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "legacy.wal")
	var data []byte
	for _, r := range recs {
		payload := encodeRecord(r)
		var hdr [legacyHeaderLen]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		data = append(data, hdr[:]...)
		data = append(data, payload...)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLegacyLogReplaysAndUpgrades: a pre-sequence log from an older build
// must replay with the old semantics, refuse new appends until truncated,
// and become a current-format log after Truncate.
func TestLegacyLogReplaysAndUpgrades(t *testing.T) {
	recs := sampleRecords()
	path := writeLegacyLog(t, recs)
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	n := 0
	if err := w.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("legacy replay saw %d of %d records", n, len(recs))
	}
	// Appending into a legacy file would mix formats; it must be refused.
	if err := w.Append(Record{Type: RecCommit, Txn: 1}); err == nil {
		t.Fatal("append to legacy log succeeded, want refusal")
	}
	// Truncate (what the engine does after its recovery checkpoint)
	// upgrades the file to the current format.
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Type: RecCommit, Txn: 5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	n = 0
	if err := w.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("post-upgrade replay saw %d records, want 1", n)
	}
	// The upgraded file leads with the magic.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) < walMagicLen || string(buf[:walMagicLen]) != walMagic {
		t.Error("upgraded log does not start with current-format magic")
	}
}

// TestLegacyTornTailStillClean: damage in a legacy log keeps the old
// torn-tail-only behavior (no sequence numbers to discriminate with).
func TestLegacyTornTailStillClean(t *testing.T) {
	recs := sampleRecords()
	path := writeLegacyLog(t, recs)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	n := 0
	if err := w.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatalf("legacy corrupt-tail replay err = %v, want clean stop", err)
	}
	if n != len(recs)-1 {
		t.Errorf("legacy replay saw %d records, want %d", n, len(recs)-1)
	}
}
