// Package wal implements the write-ahead log. Recovery follows the
// force-at-checkpoint protocol of package storage: data files only change
// at checkpoints, each table records its durable row count, and redo
// replays logged inserts whose row index is at or beyond that watermark —
// making replay idempotent without page LSNs.
//
// Records are length-prefixed and CRC-protected; a torn tail (crash during
// append) is detected and discarded.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// RecordType enumerates log record kinds.
type RecordType uint8

// Log record kinds.
const (
	// RecInsert logs one row appended to a table (heap or clustered).
	RecInsert RecordType = iota + 1
	// RecCommit marks a transaction committed; its effects must be redone.
	RecCommit
	// RecAbort marks a transaction rolled back; its effects are skipped.
	RecAbort
	// RecBlobCreate logs creation of a FileStream blob (data is the GUID).
	RecBlobCreate
	// RecBlobDelete logs deletion of a FileStream blob.
	RecBlobDelete
	// RecDDL logs a catalog change (data is the serialized statement).
	RecDDL
	// RecStats logs an ANALYZE statistics image (data is the JSON-encoded
	// table statistics); recovery re-applies the image so stats collected
	// after the last checkpoint survive a crash that loses the stats file.
	RecStats
	// RecBegin marks the first write of a transaction. Recovery does not
	// need it (commit presence decides replay) but it bounds each txn id's
	// record range for log inspection and future partial-truncate schemes.
	RecBegin
)

// Record is one log entry.
type Record struct {
	Type     RecordType
	Txn      uint64
	Table    uint32 // table id for RecInsert
	RowIndex int64  // position of the inserted row within its table
	Data     []byte // row image, blob GUID, or DDL payload
}

// WAL is an append-only log file. Appends are buffered; Flush makes them
// durable. Safe for concurrent use.
//
// Flush is a group commit: concurrent callers elect a leader that writes
// and fsyncs the whole buffer — covering every record appended before the
// grab — while followers wait for a completed sync to cover their own
// records. N concurrently committing transactions therefore pay ~1 fsync
// instead of N.
type WAL struct {
	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File
	buf  []byte
	size int64
	path string

	appendSeq uint64 // records appended so far
	syncedSeq uint64 // appendSeq covered by the last completed fsync
	flushing  bool   // a leader is writing/syncing outside the lock
	ioErr     error  // sticky: a failed write/sync poisons the log

	syncs atomic.Int64 // completed fsyncs (observability + tests)
	// groupWait optionally stretches the leader's gathering window so
	// followers can pile onto one sync; used by tests (production leaders
	// gather naturally while the previous sync is in flight).
	groupWait time.Duration
}

const walHeaderLen = 8 // u32 length + u32 crc

// Open opens (creating if needed) the log at path. Existing content is
// preserved for Replay.
func Open(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &WAL{f: f, size: st.Size(), path: path}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// Append buffers one record. Call Flush to make it durable (the engine
// flushes on commit).
func (w *WAL) Append(rec Record) error {
	payload := encodeRecord(rec)
	var hdr [walHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ioErr != nil {
		return w.ioErr
	}
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	w.appendSeq++
	return nil
}

// Flush makes every record appended before the call durable — the
// durability point of a commit. Concurrent flushes batch into one fsync.
func (w *WAL) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushToLocked(w.appendSeq)
}

// flushToLocked returns once records up to target are durable, electing
// this caller as the write/sync leader when no sync is in flight. Called
// with w.mu held; the lock is dropped during I/O.
func (w *WAL) flushToLocked(target uint64) error {
	for {
		if w.ioErr != nil {
			return w.ioErr
		}
		if w.syncedSeq >= target {
			return nil
		}
		if w.flushing {
			// A leader is syncing; it may already cover target. Re-check
			// when it finishes.
			w.cond.Wait()
			continue
		}
		w.flushing = true
		if w.groupWait > 0 {
			// Test hook: hold the gathering window open so concurrent
			// committers join this sync.
			w.mu.Unlock()
			time.Sleep(w.groupWait)
			w.mu.Lock()
		}
		batch := w.buf
		w.buf = nil
		covered := w.appendSeq
		off := w.size
		w.mu.Unlock()

		var err error
		if len(batch) > 0 {
			if _, err = w.f.WriteAt(batch, off); err != nil {
				err = fmt.Errorf("wal: write %s: %w", w.path, err)
			}
		}
		if err == nil {
			if err = w.f.Sync(); err != nil {
				err = fmt.Errorf("wal: sync %s: %w", w.path, err)
			} else {
				w.syncs.Add(1)
			}
		}

		w.mu.Lock()
		w.flushing = false
		if err != nil {
			w.ioErr = err
		} else {
			w.size = off + int64(len(batch))
			w.syncedSeq = covered
		}
		w.cond.Broadcast()
	}
}

// Syncs returns the number of completed fsyncs — with group commit this
// grows slower than the number of committed transactions.
func (w *WAL) Syncs() int64 { return w.syncs.Load() }

// awaitIdleLocked waits until no leader is writing outside the lock, so
// the caller may safely mutate the file. Called with w.mu held.
func (w *WAL) awaitIdleLocked() {
	for w.flushing {
		w.cond.Wait()
	}
}

// Size returns the durable log size in bytes (excluding buffered records).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// PendingBytes returns the buffered, not-yet-flushed byte count.
func (w *WAL) PendingBytes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// Truncate discards the entire log; called after a successful checkpoint
// has made all logged effects durable in the data files.
func (w *WAL) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.awaitIdleLocked() // no leader may be writing while we shrink the file
	w.buf = w.buf[:0]
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	w.size = 0
	w.syncedSeq = w.appendSeq // nothing left to make durable
	return w.f.Sync()
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	err := w.Flush()
	w.mu.Lock()
	w.awaitIdleLocked() // other committers may still have a leader in flight
	w.mu.Unlock()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Replay streams every intact record from the start of the log. A torn or
// corrupt record ends replay silently (it is the crash frontier); the
// caller should Truncate after re-checkpointing.
func (w *WAL) Replay(fn func(Record) error) error {
	w.mu.Lock()
	if err := w.flushToLocked(w.appendSeq); err != nil {
		w.mu.Unlock()
		return err
	}
	size := w.size
	w.mu.Unlock()

	var off int64
	var hdr [walHeaderLen]byte
	for off+walHeaderLen <= size {
		if _, err := w.f.ReadAt(hdr[:], off); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:]))
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if off+walHeaderLen+n > size {
			return nil // torn tail
		}
		payload := make([]byte, n)
		if _, err := w.f.ReadAt(payload, off+walHeaderLen); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil // corrupt tail
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return nil // undecodable tail counts as torn
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += walHeaderLen + n
	}
	return nil
}

func encodeRecord(rec Record) []byte {
	out := make([]byte, 0, 16+len(rec.Data))
	out = append(out, byte(rec.Type))
	out = binary.AppendUvarint(out, rec.Txn)
	out = binary.AppendUvarint(out, uint64(rec.Table))
	out = binary.AppendUvarint(out, uint64(rec.RowIndex))
	out = binary.AppendUvarint(out, uint64(len(rec.Data)))
	return append(out, rec.Data...)
}

func decodeRecord(b []byte) (Record, error) {
	var rec Record
	if len(b) < 1 {
		return rec, fmt.Errorf("wal: empty record")
	}
	rec.Type = RecordType(b[0])
	b = b[1:]
	u := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("wal: truncated record field")
		}
		b = b[n:]
		return v, nil
	}
	txn, err := u()
	if err != nil {
		return rec, err
	}
	table, err := u()
	if err != nil {
		return rec, err
	}
	rowIdx, err := u()
	if err != nil {
		return rec, err
	}
	dataLen, err := u()
	if err != nil {
		return rec, err
	}
	if uint64(len(b)) != dataLen {
		return rec, fmt.Errorf("wal: record data length mismatch")
	}
	rec.Txn = txn
	rec.Table = uint32(table)
	rec.RowIndex = int64(rowIdx)
	if dataLen > 0 {
		rec.Data = append([]byte(nil), b...)
	}
	return rec, nil
}
