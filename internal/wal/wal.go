// Package wal implements the write-ahead log. Recovery follows the
// force-at-checkpoint protocol of package storage: data files only change
// at checkpoints, each table records its durable row count, and redo
// replays logged inserts whose row index is at or beyond that watermark —
// making replay idempotent without page LSNs.
//
// Records are length-prefixed, CRC-protected, and carry a monotonic
// sequence number. The sequence number lets Replay tell the two failure
// shapes apart: a torn tail (crash during append — the log simply ends
// early, recovery stops cleanly) versus mid-log corruption with valid
// records after it (bit rot or a misdirected write inside committed
// history — recovery fails with ErrCorruptLog rather than silently
// dropping committed transactions).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// RecordType enumerates log record kinds.
type RecordType uint8

// Log record kinds.
const (
	// RecInsert logs one row appended to a table (heap or clustered).
	RecInsert RecordType = iota + 1
	// RecCommit marks a transaction committed; its effects must be redone.
	RecCommit
	// RecAbort marks a transaction rolled back; its effects are skipped.
	RecAbort
	// RecBlobCreate logs creation of a FileStream blob (data is the GUID).
	RecBlobCreate
	// RecBlobDelete logs deletion of a FileStream blob.
	RecBlobDelete
	// RecDDL logs a catalog change (data is the serialized statement).
	RecDDL
	// RecStats logs an ANALYZE statistics image (data is the JSON-encoded
	// table statistics); recovery re-applies the image so stats collected
	// after the last checkpoint survive a crash that loses the stats file.
	RecStats
	// RecBegin marks the first write of a transaction. Recovery does not
	// need it (commit presence decides replay) but it bounds each txn id's
	// record range for log inspection and future partial-truncate schemes.
	RecBegin
)

// Record is one log entry.
type Record struct {
	Type     RecordType
	Txn      uint64
	Table    uint32 // table id for RecInsert
	RowIndex int64  // position of the inserted row within its table
	Data     []byte // row image, blob GUID, or DDL payload
}

// ErrCorruptLog reports damage inside committed log history: a record
// that fails its CRC or breaks the sequence while valid records exist
// after it. Unlike a torn tail this is not a crash frontier — replaying
// past it would silently drop committed transactions, so recovery
// surfaces the error instead. Match with errors.Is.
var ErrCorruptLog = errors.New("wal: corrupt log")

// WAL is an append-only log file. Appends are buffered; Flush makes them
// durable. Safe for concurrent use.
//
// Flush is a group commit: concurrent callers elect a leader that writes
// and fsyncs the whole buffer — covering every record appended before the
// grab — while followers wait for a completed sync to cover their own
// records. N concurrently committing transactions therefore pay ~1 fsync
// instead of N.
type WAL struct {
	mu   sync.Mutex
	cond *sync.Cond
	f    fault.File
	buf  []byte
	size int64
	path string
	inj  *fault.Injector

	appendSeq uint64 // records appended so far
	syncedSeq uint64 // appendSeq covered by the last completed fsync
	flushing  bool   // a leader is writing/syncing outside the lock
	ioErr     error  // sticky: a failed write/sync poisons the log

	// nextSeq is the sequence number the next appended record gets
	// (monotonic from 1 within one log generation; Truncate resets it).
	nextSeq uint64
	// legacy marks a pre-sequence-number log file (no magic, 8-byte
	// record headers). It is replayable with the old torn-tail-only
	// semantics and becomes a current-format log at the first Truncate.
	legacy bool

	syncs atomic.Int64 // completed fsyncs (observability + tests)
	// groupWait optionally stretches the leader's gathering window so
	// followers can pile onto one sync; used by tests (production leaders
	// gather naturally while the previous sync is in flight).
	groupWait time.Duration
}

// Log file format: walMagic, then records of walHeaderLen-byte header
// (u32 payload length, u32 CRC over sequence+payload, u64 sequence)
// followed by the payload. Legacy files (pre-sequence) have no magic and
// legacyHeaderLen-byte headers (u32 length, u32 CRC over payload).
const (
	walMagic        = "GWALSEQ1"
	walMagicLen     = 8
	walHeaderLen    = 16
	legacyHeaderLen = 8
)

// Open opens (creating if needed) the log at path. Existing content is
// preserved for Replay.
func Open(path string) (*WAL, error) {
	return OpenFault(path, nil)
}

// OpenFault is Open with fault-injection routing: log writes and fsyncs
// evaluate failpoints at site "wal", and appends evaluate the code point
// "wal.append".
func OpenFault(path string, inj *fault.Injector) (*WAL, error) {
	f, err := fault.OpenFile(inj, "wal", path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &WAL{f: f, size: size, path: path, inj: inj, nextSeq: 1}
	w.cond = sync.NewCond(&w.mu)
	if err := w.scanOpen(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// scanOpen classifies the existing log (current format vs legacy) and
// positions nextSeq after the last intact record. Damage is left in place
// for Replay to diagnose (torn tail vs mid-log corruption).
func (w *WAL) scanOpen() error {
	if w.size == 0 {
		return nil
	}
	var magic [walMagicLen]byte
	if w.size >= walMagicLen {
		if _, err := w.f.ReadAt(magic[:], 0); err != nil {
			return fmt.Errorf("wal: read %s: %w", w.path, err)
		}
	}
	if string(magic[:]) != walMagic {
		// A short or unmagiced non-empty file: either a pre-sequence log
		// or the torn first flush of a new one (nothing durable yet —
		// legacy replay of unparseable bytes stops immediately).
		w.legacy = true
		return nil
	}
	off := int64(walMagicLen)
	var hdr [walHeaderLen]byte
	for off+walHeaderLen <= w.size {
		if _, err := w.f.ReadAt(hdr[:], off); err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("wal: read %s: %w", w.path, err)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:]))
		crc := binary.LittleEndian.Uint32(hdr[4:])
		seq := binary.LittleEndian.Uint64(hdr[8:])
		if off+walHeaderLen+n > w.size || seq != w.nextSeq {
			break
		}
		payload := make([]byte, n)
		if _, err := w.f.ReadAt(payload, off+walHeaderLen); err != nil {
			return fmt.Errorf("wal: read %s: %w", w.path, err)
		}
		if recordCRC(hdr[8:16], payload) != crc {
			break
		}
		w.nextSeq = seq + 1
		off += walHeaderLen + n
	}
	return nil
}

// recordCRC computes the checksum stored in a record header: CRC-32 over
// the sequence-number bytes followed by the payload, so a damaged
// sequence field is detected like damaged data.
func recordCRC(seqBytes, payload []byte) uint32 {
	c := crc32.ChecksumIEEE(seqBytes)
	return crc32.Update(c, crc32.IEEETable, payload)
}

// Append buffers one record. Call Flush to make it durable (the engine
// flushes on commit).
func (w *WAL) Append(rec Record) error {
	if err := w.inj.Point("wal.append"); err != nil {
		return fmt.Errorf("wal: append to %s: %w", w.path, err)
	}
	payload := encodeRecord(rec)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ioErr != nil {
		return w.ioErr
	}
	if w.legacy {
		// Mixing formats in one file would make replay ambiguous; the
		// engine checkpoints (and thus truncates to the current format)
		// before its first append, so this only guards misuse.
		return fmt.Errorf("wal: %s is a pre-sequence log; checkpoint and truncate before appending", w.path)
	}
	var hdr [walHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:], w.nextSeq)
	binary.LittleEndian.PutUint32(hdr[4:], recordCRC(hdr[8:16], payload))
	w.nextSeq++
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	w.appendSeq++
	return nil
}

// Flush makes every record appended before the call durable — the
// durability point of a commit. Concurrent flushes batch into one fsync.
func (w *WAL) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushToLocked(w.appendSeq)
}

// flushToLocked returns once records up to target are durable, electing
// this caller as the write/sync leader when no sync is in flight. Called
// with w.mu held; the lock is dropped during I/O.
func (w *WAL) flushToLocked(target uint64) error {
	for {
		if w.ioErr != nil {
			return w.ioErr
		}
		if w.syncedSeq >= target {
			return nil
		}
		if w.flushing {
			// A leader is syncing; it may already cover target. Re-check
			// when it finishes.
			w.cond.Wait()
			continue
		}
		w.flushing = true
		if w.groupWait > 0 {
			// Test hook: hold the gathering window open so concurrent
			// committers join this sync.
			w.mu.Unlock()
			time.Sleep(w.groupWait)
			w.mu.Lock()
		}
		batch := w.buf
		w.buf = nil
		covered := w.appendSeq
		off := w.size
		if off == 0 && len(batch) > 0 {
			// First write of a log generation: lead with the magic.
			batch = append([]byte(walMagic), batch...)
		}
		w.mu.Unlock()

		var err error
		if len(batch) > 0 {
			if _, err = w.f.WriteAt(batch, off); err != nil {
				err = fmt.Errorf("wal: write %s: %w", w.path, err)
			}
		}
		if err == nil {
			if err = w.f.Sync(); err != nil {
				err = fmt.Errorf("wal: sync %s: %w", w.path, err)
			} else {
				w.syncs.Add(1)
			}
		}

		w.mu.Lock()
		w.flushing = false
		if err != nil {
			w.ioErr = err
		} else {
			w.size = off + int64(len(batch))
			w.syncedSeq = covered
		}
		w.cond.Broadcast()
	}
}

// Syncs returns the number of completed fsyncs — with group commit this
// grows slower than the number of committed transactions.
func (w *WAL) Syncs() int64 { return w.syncs.Load() }

// awaitIdleLocked waits until no leader is writing outside the lock, so
// the caller may safely mutate the file. Called with w.mu held.
func (w *WAL) awaitIdleLocked() {
	for w.flushing {
		w.cond.Wait()
	}
}

// Size returns the durable log size in bytes (excluding buffered records).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// PendingBytes returns the buffered, not-yet-flushed byte count.
func (w *WAL) PendingBytes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// Truncate discards the entire log; called after a successful checkpoint
// has made all logged effects durable in the data files. The next flush
// starts a fresh log generation in the current format (sequence numbers
// restart at 1), which is also how a legacy-format log is upgraded.
func (w *WAL) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.awaitIdleLocked() // no leader may be writing while we shrink the file
	w.buf = w.buf[:0]
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	w.size = 0
	w.syncedSeq = w.appendSeq // nothing left to make durable
	w.nextSeq = 1
	w.legacy = false
	return w.f.Sync()
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	err := w.Flush()
	w.mu.Lock()
	w.awaitIdleLocked() // other committers may still have a leader in flight
	w.mu.Unlock()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Replay streams every intact record from the start of the log. A torn
// tail — the log ends mid-record with nothing after it — ends replay
// cleanly: it is the crash frontier, and the caller should Truncate after
// re-checkpointing. A record that fails its CRC, decodes badly, or breaks
// the sequence while intact records exist beyond it is mid-log corruption:
// Replay returns ErrCorruptLog, because continuing (or stopping silently)
// would drop committed transactions.
func (w *WAL) Replay(fn func(Record) error) error {
	w.mu.Lock()
	if err := w.flushToLocked(w.appendSeq); err != nil {
		w.mu.Unlock()
		return err
	}
	size := w.size
	legacy := w.legacy
	w.mu.Unlock()

	if legacy {
		return w.replayLegacy(size, fn)
	}
	if size < walMagicLen {
		return nil
	}
	var off int64 = walMagicLen
	var prevSeq uint64
	var hdr [walHeaderLen]byte
	for off+walHeaderLen <= size {
		bad := ""
		var n int64
		var rec Record
		if _, err := w.f.ReadAt(hdr[:], off); err != nil {
			if err != io.EOF {
				return err
			}
			bad = "short header"
		}
		if bad == "" {
			n = int64(binary.LittleEndian.Uint32(hdr[0:]))
			crc := binary.LittleEndian.Uint32(hdr[4:])
			seq := binary.LittleEndian.Uint64(hdr[8:])
			if off+walHeaderLen+n > size {
				bad = "truncated payload"
			} else {
				payload := make([]byte, n)
				if _, err := w.f.ReadAt(payload, off+walHeaderLen); err != nil {
					return err
				}
				if recordCRC(hdr[8:16], payload) != crc {
					bad = "checksum mismatch"
				} else if seq != prevSeq+1 {
					// An intact record with the wrong sequence number is
					// corruption on its own: sequences never skip, so
					// records between prevSeq and seq were lost (or stale
					// bytes sit where newer records should be).
					return fmt.Errorf("wal: %s: intact record with sequence %d after %d at offset %d: %w",
						w.path, seq, prevSeq, off, ErrCorruptLog)
				} else {
					var err error
					rec, err = decodeRecord(payload)
					if err != nil {
						bad = "undecodable record"
					}
				}
			}
		}
		if bad != "" {
			later, err := w.laterIntactRecord(off, size, prevSeq)
			if err != nil {
				return err
			}
			if later {
				return fmt.Errorf("wal: %s: record after sequence %d at offset %d (%s) with intact records beyond it: %w",
					w.path, prevSeq, off, bad, ErrCorruptLog)
			}
			return nil // genuine torn tail: crash frontier
		}
		if err := fn(rec); err != nil {
			return err
		}
		prevSeq++
		off += walHeaderLen + n
	}
	return nil
}

// laterIntactRecord reports whether any byte offset after a damaged
// record parses as an intact record with a larger sequence number —
// the discriminator between a torn tail and mid-log corruption.
func (w *WAL) laterIntactRecord(off, size int64, prevSeq uint64) (bool, error) {
	rest := make([]byte, size-off)
	if _, err := w.f.ReadAt(rest, off); err != nil && err != io.EOF {
		return false, err
	}
	for o := int64(1); o+walHeaderLen <= int64(len(rest)); o++ {
		n := int64(binary.LittleEndian.Uint32(rest[o:]))
		if o+walHeaderLen+n > int64(len(rest)) {
			continue
		}
		crc := binary.LittleEndian.Uint32(rest[o+4:])
		seq := binary.LittleEndian.Uint64(rest[o+8:])
		if seq <= prevSeq {
			continue
		}
		payload := rest[o+walHeaderLen : o+walHeaderLen+n]
		if recordCRC(rest[o+8:o+16], payload) != crc {
			continue
		}
		if _, err := decodeRecord(payload); err != nil {
			continue
		}
		return true, nil
	}
	return false, nil
}

// replayLegacy replays a pre-sequence-number log: 8-byte headers, CRC
// over payload only, and the historical semantics where any damage is
// treated as the crash frontier (legacy logs cannot tell the difference).
func (w *WAL) replayLegacy(size int64, fn func(Record) error) error {
	var off int64
	var hdr [legacyHeaderLen]byte
	for off+legacyHeaderLen <= size {
		if _, err := w.f.ReadAt(hdr[:], off); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:]))
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if off+legacyHeaderLen+n > size {
			return nil // torn tail
		}
		payload := make([]byte, n)
		if _, err := w.f.ReadAt(payload, off+legacyHeaderLen); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil // corrupt tail
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return nil // undecodable tail counts as torn
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += legacyHeaderLen + n
	}
	return nil
}

func encodeRecord(rec Record) []byte {
	out := make([]byte, 0, 16+len(rec.Data))
	out = append(out, byte(rec.Type))
	out = binary.AppendUvarint(out, rec.Txn)
	out = binary.AppendUvarint(out, uint64(rec.Table))
	out = binary.AppendUvarint(out, uint64(rec.RowIndex))
	out = binary.AppendUvarint(out, uint64(len(rec.Data)))
	return append(out, rec.Data...)
}

func decodeRecord(b []byte) (Record, error) {
	var rec Record
	if len(b) < 1 {
		return rec, fmt.Errorf("wal: empty record")
	}
	rec.Type = RecordType(b[0])
	b = b[1:]
	u := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("wal: truncated record field")
		}
		b = b[n:]
		return v, nil
	}
	txn, err := u()
	if err != nil {
		return rec, err
	}
	table, err := u()
	if err != nil {
		return rec, err
	}
	rowIdx, err := u()
	if err != nil {
		return rec, err
	}
	dataLen, err := u()
	if err != nil {
		return rec, err
	}
	if uint64(len(b)) != dataLen {
		return rec, fmt.Errorf("wal: record data length mismatch")
	}
	rec.Txn = txn
	rec.Table = uint32(table)
	rec.RowIndex = int64(rowIdx)
	if dataLen > 0 {
		rec.Data = append([]byte(nil), b...)
	}
	return rec, nil
}
