package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func openTestWAL(t *testing.T) (*WAL, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return w, path
}

func sampleRecords() []Record {
	return []Record{
		{Type: RecInsert, Txn: 1, Table: 3, RowIndex: 0, Data: []byte("row0")},
		{Type: RecInsert, Txn: 1, Table: 3, RowIndex: 1, Data: []byte("row1-longer-payload")},
		{Type: RecBlobCreate, Txn: 1, Data: []byte("guid-1234")},
		{Type: RecCommit, Txn: 1},
		{Type: RecInsert, Txn: 2, Table: 5, RowIndex: 0, Data: nil},
		{Type: RecAbort, Txn: 2},
	}
}

func TestAppendFlushReplay(t *testing.T) {
	w, _ := openTestWAL(t)
	defer w.Close()
	recs := sampleRecords()
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := w.Replay(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("replay = %+v, want %+v", got, recs)
	}
}

func TestReplayAcrossReopen(t *testing.T) {
	w, path := openTestWAL(t)
	recs := sampleRecords()
	for _, r := range recs {
		w.Append(r)
	}
	if err := w.Close(); err != nil { // Close flushes
		t.Fatal(err)
	}
	w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var got []Record
	if err := w2.Replay(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("replay after reopen mismatched")
	}
}

func TestReplayStopsAtTornTail(t *testing.T) {
	w, path := openTestWAL(t)
	recs := sampleRecords()
	for _, r := range recs {
		w.Append(r)
	}
	w.Close()

	// Corrupt the file by cutting bytes off the end - a torn final write.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 3, 7} {
		tornPath := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(tornPath, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := Open(tornPath)
		if err != nil {
			t.Fatal(err)
		}
		var got []Record
		if err := w2.Replay(func(r Record) error { got = append(got, r); return nil }); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(recs)-1 {
			t.Errorf("cut %d: replayed %d records, want %d (torn last)", cut, len(got), len(recs)-1)
		}
		w2.Close()
	}
}

func TestReplayStopsAtCorruptCRC(t *testing.T) {
	w, path := openTestWAL(t)
	recs := sampleRecords()
	for _, r := range recs {
		w.Append(r)
	}
	w.Close()
	data, _ := os.ReadFile(path)
	// Flip one byte in the last record's payload.
	data[len(data)-2] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	n := 0
	w2.Replay(func(Record) error { n++; return nil })
	if n != len(recs)-1 {
		t.Errorf("replayed %d records with corrupt last, want %d", n, len(recs)-1)
	}
}

func TestTruncate(t *testing.T) {
	w, _ := openTestWAL(t)
	defer w.Close()
	for _, r := range sampleRecords() {
		w.Append(r)
	}
	w.Flush()
	if w.Size() == 0 {
		t.Fatal("size 0 after flush")
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Errorf("size %d after truncate", w.Size())
	}
	n := 0
	w.Replay(func(Record) error { n++; return nil })
	if n != 0 {
		t.Errorf("%d records after truncate", n)
	}
	// The log is still usable.
	w.Append(Record{Type: RecCommit, Txn: 9})
	w.Flush()
	n = 0
	w.Replay(func(Record) error { n++; return nil })
	if n != 1 {
		t.Errorf("%d records after truncate+append", n)
	}
}

func TestPendingBytesAndImplicitReplayFlush(t *testing.T) {
	w, _ := openTestWAL(t)
	defer w.Close()
	w.Append(Record{Type: RecCommit, Txn: 1})
	if w.PendingBytes() == 0 {
		t.Error("no pending bytes after Append")
	}
	// Replay flushes pending records first so it sees everything.
	n := 0
	w.Replay(func(Record) error { n++; return nil })
	if n != 1 {
		t.Errorf("replay saw %d records", n)
	}
	if w.PendingBytes() != 0 {
		t.Error("pending bytes after replay-flush")
	}
}

func TestEmptyLog(t *testing.T) {
	w, _ := openTestWAL(t)
	defer w.Close()
	n := 0
	if err := w.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("%d records in empty log", n)
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: RecInsert, Txn: 0, Table: 0, RowIndex: 0},
		{Type: RecInsert, Txn: 1<<60 + 3, Table: 1 << 30, RowIndex: 1 << 50, Data: []byte{0, 1, 2}},
		{Type: RecDDL, Data: []byte("CREATE TABLE t (a INT)")},
	}
	for _, r := range recs {
		dec, err := decodeRecord(encodeRecord(r))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dec, r) {
			t.Errorf("round trip %+v != %+v", dec, r)
		}
	}
}

// TestGroupCommitBatchesFsyncs checks the leader/follower protocol: N
// concurrent committers must all become durable while paying fewer than N
// fsyncs. groupWait holds the leader's gathering window open so the test
// is deterministic on any scheduler.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	w, _ := openTestWAL(t)
	w.groupWait = 5 * time.Millisecond
	const committers = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if err := w.Append(Record{Type: RecCommit, Txn: uint64(i + 1)}); err != nil {
				errs <- err
				return
			}
			if err := w.Flush(); err != nil {
				errs <- err
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := w.Syncs(); n >= committers {
		t.Errorf("group commit paid %d fsyncs for %d committers", n, committers)
	} else if n == 0 {
		t.Error("no fsync recorded")
	}
	// Every record must still be durable and replayable.
	seen := map[uint64]bool{}
	if err := w.Replay(func(rec Record) error {
		seen[rec.Txn] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != committers {
		t.Errorf("replayed %d of %d commit records", len(seen), committers)
	}
}

// TestGroupCommitConcurrentStress hammers Append+Flush from many
// goroutines (run under -race in CI) and verifies no record is lost and
// the log stays well-formed.
func TestGroupCommitConcurrentStress(t *testing.T) {
	w, _ := openTestWAL(t)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := Record{Type: RecInsert, Txn: uint64(g*per + i + 1), Table: 1, RowIndex: int64(i), Data: []byte{byte(g), byte(i)}}
				if err := w.Append(rec); err != nil {
					errs <- err
					return
				}
				if err := w.Flush(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	count := 0
	if err := w.Replay(func(rec Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != workers*per {
		t.Errorf("replayed %d of %d records", count, workers*per)
	}
	flushes := int64(workers * per)
	if n := w.Syncs(); n > flushes {
		t.Errorf("syncs %d exceeds flush calls %d", n, flushes)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
