package seq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodeOfRoundTrip(t *testing.T) {
	for _, b := range []byte("ACGT") {
		code, ok := CodeOf(b)
		if !ok {
			t.Fatalf("CodeOf(%q) not ok", b)
		}
		if got := SymbolOf(code); got != b {
			t.Errorf("SymbolOf(CodeOf(%q)) = %q", b, got)
		}
	}
	for _, b := range []byte("acgt") {
		code, ok := CodeOf(b)
		if !ok {
			t.Fatalf("CodeOf(%q) not ok", b)
		}
		if got := SymbolOf(code); got != b-'a'+'A' {
			t.Errorf("SymbolOf(CodeOf(%q)) = %q, want uppercase", b, got)
		}
	}
	if _, ok := CodeOf('N'); ok {
		t.Error("CodeOf('N') should not be ok")
	}
	if _, ok := CodeOf('X'); ok {
		t.Error("CodeOf('X') should not be ok")
	}
}

func TestIsValid(t *testing.T) {
	cases := []struct {
		s    string
		want bool
	}{
		{"", true},
		{"ACGT", true},
		{"acgtn", true},
		{"ACGTN", true},
		{"ACGU", false},
		{"AC GT", false},
		{"123", false},
	}
	for _, c := range cases {
		if got := IsValid(c.s); got != c.want {
			t.Errorf("IsValid(%q) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestHasN(t *testing.T) {
	if HasN("ACGT") {
		t.Error("HasN(ACGT) = true")
	}
	if !HasN("ACNGT") {
		t.Error("HasN(ACNGT) = false")
	}
	if !HasN("nAC") {
		t.Error("HasN(nAC) = false")
	}
}

func TestReverseComplement(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"A", "T"},
		{"ACGT", "ACGT"}, // palindrome
		{"AACC", "GGTT"},
		{"ACGTN", "NACGT"},
		{"GATTACA", "TGTAATC"},
	}
	for _, c := range cases {
		if got := ReverseComplement(c.in); got != c.want {
			t.Errorf("ReverseComplement(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		s := randomSeqFrom(raw, "ACGT")
		return ReverseComplement(ReverseComplement(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGCContent(t *testing.T) {
	cases := []struct {
		s    string
		want float64
	}{
		{"", 0},
		{"NNN", 0},
		{"GGCC", 1},
		{"AATT", 0},
		{"ACGT", 0.5},
		{"GCNA", 2.0 / 3.0},
	}
	for _, c := range cases {
		if got := GCContent(c.s); got != c.want {
			t.Errorf("GCContent(%q) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestHamming(t *testing.T) {
	if d := Hamming("ACGT", "ACGT"); d != 0 {
		t.Errorf("Hamming equal = %d", d)
	}
	if d := Hamming("ACGT", "ACGA"); d != 1 {
		t.Errorf("Hamming 1-mismatch = %d", d)
	}
	if d := Hamming("AAAA", "TTTT"); d != 4 {
		t.Errorf("Hamming all-mismatch = %d", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("Hamming on unequal lengths did not panic")
		}
	}()
	Hamming("A", "AA")
}

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []string{"", "A", "ACGT", "ACGTN", "NNNN", "GATTACA",
		strings.Repeat("ACGTN", 50)}
	for _, s := range cases {
		p, err := Pack(s)
		if err != nil {
			t.Fatalf("Pack(%q): %v", s, err)
		}
		if p.Len() != len(s) {
			t.Errorf("Pack(%q).Len() = %d", s, p.Len())
		}
		if got := p.Unpack(); got != s {
			t.Errorf("Unpack(Pack(%q)) = %q", s, got)
		}
	}
}

func TestPackRejectsBadSymbol(t *testing.T) {
	if _, err := Pack("ACGU"); err == nil {
		t.Error("Pack(ACGU) did not fail")
	}
}

func TestPackedBase(t *testing.T) {
	s := "ACGTNACGT"
	p, err := Pack(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(s); i++ {
		if got := p.Base(i); got != s[i] {
			t.Errorf("Base(%d) = %q, want %q", i, got, s[i])
		}
	}
}

func TestPackedEncodeDecodeRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		s := randomSeqFrom(raw, "ACGTN")
		p, err := Pack(s)
		if err != nil {
			return false
		}
		q, err := Decode(p.Encode())
		if err != nil {
			return false
		}
		return q.Unpack() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	p, err := Pack(strings.Repeat("ACGT", 16))
	if err != nil {
		t.Fatal(err)
	}
	enc := p.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("Decode of %d/%d bytes succeeded", cut, len(enc))
		}
	}
}

func TestPackedSizeIsQuarter(t *testing.T) {
	// The paper remarks bit-encoding reduces storage to about a quarter.
	n := 100
	sz := PackedSize(n, 0)
	if sz > n/3 {
		t.Errorf("PackedSize(%d) = %d, not ~n/4", n, sz)
	}
}

func TestQualityRoundTrip(t *testing.T) {
	qs := []Quality{0, 1, 2, 10, 40, 93}
	enc := EncodeQualities(qs)
	dec, err := DecodeQualities(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(qs) {
		t.Fatalf("len = %d", len(dec))
	}
	for i := range qs {
		if dec[i] != qs[i] {
			t.Errorf("q[%d] = %d, want %d", i, dec[i], qs[i])
		}
	}
}

func TestQualityClamp(t *testing.T) {
	enc := EncodeQualities([]Quality{200})
	if enc[0] != MaxQuality+PhredOffset {
		t.Errorf("over-range quality encoded as %d", enc[0])
	}
}

func TestDecodeQualitiesRejectsOutOfRange(t *testing.T) {
	if _, err := DecodeQualities("\x1f"); err == nil {
		t.Error("DecodeQualities accepted char below offset")
	}
}

func TestErrorProbability(t *testing.T) {
	if p := Quality(10).ErrorProbability(); p < 0.099 || p > 0.101 {
		t.Errorf("Q10 prob = %v, want ~0.1", p)
	}
	if p := Quality(30).ErrorProbability(); p < 0.00099 || p > 0.00101 {
		t.Errorf("Q30 prob = %v, want ~0.001", p)
	}
}

func TestQualityFromProbability(t *testing.T) {
	if q := QualityFromProbability(0.1); q != 10 {
		t.Errorf("Q(0.1) = %d, want 10", q)
	}
	if q := QualityFromProbability(0); q != MaxQuality {
		t.Errorf("Q(0) = %d, want max", q)
	}
	if q := QualityFromProbability(1); q != 0 {
		t.Errorf("Q(1) = %d, want 0", q)
	}
}

func TestQualityProbabilityInverse(t *testing.T) {
	for q := Quality(0); q <= 60; q++ {
		if got := QualityFromProbability(q.ErrorProbability()); got != q {
			t.Errorf("round trip of Q%d = Q%d", q, got)
		}
	}
}

func TestAverageQuality(t *testing.T) {
	enc := EncodeQualities([]Quality{10, 20, 30})
	if avg := AverageQuality(enc); avg != 20 {
		t.Errorf("AverageQuality = %v, want 20", avg)
	}
	if avg := AverageQuality(""); avg != 0 {
		t.Errorf("AverageQuality(empty) = %v", avg)
	}
}

// randomSeqFrom maps arbitrary fuzz bytes onto the given alphabet so that
// quick.Check explores sequence space rather than rejecting inputs.
func randomSeqFrom(raw []byte, alphabet string) string {
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = alphabet[int(b)%len(alphabet)]
	}
	return string(out)
}

func BenchmarkPack36bp(b *testing.B) {
	s := randomReadForBench(36)
	b.SetBytes(int64(len(s)))
	for i := 0; i < b.N; i++ {
		if _, err := Pack(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpack36bp(b *testing.B) {
	p, _ := Pack(randomReadForBench(36))
	for i := 0; i < b.N; i++ {
		_ = p.Unpack()
	}
}

func randomReadForBench(n int) string {
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = Alphabet[rng.Intn(4)]
	}
	return string(buf)
}
