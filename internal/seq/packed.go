package seq

import (
	"errors"
	"fmt"
)

// Packed is the 2-bit packed sequence representation — the paper's proposed
// genomic sequence UDT ("a bit-encoding of the sequences could reduce the
// size to just about a quarter", Section 5.1.2). Four bases are stored per
// byte; uncertain 'N' calls are kept in a sparse exception list so that the
// common all-called case costs exactly ceil(n/4) bytes plus a small header.
//
// The wire encoding produced by Encode is:
//
//	varint  length in bases
//	varint  number of N exceptions
//	varint* N positions (delta encoded)
//	bytes   packed 2-bit payload, little-endian within the byte
type Packed struct {
	n      int      // length in bases
	data   []byte   // ceil(n/4) bytes, 2 bits per base
	nified []uint32 // sorted positions that are 'N'
}

// ErrBadSymbol is returned by Pack for symbols outside A/C/G/T/N.
var ErrBadSymbol = errors.New("seq: symbol outside ACGTN alphabet")

// Pack converts a textual sequence into the packed representation.
func Pack(s string) (Packed, error) {
	p := Packed{n: len(s), data: make([]byte, (len(s)+3)/4)}
	for i := 0; i < len(s); i++ {
		code, ok := CodeOf(s[i])
		if !ok {
			if s[i] != 'N' && s[i] != 'n' {
				return Packed{}, fmt.Errorf("%w: %q at position %d", ErrBadSymbol, s[i], i)
			}
			p.nified = append(p.nified, uint32(i))
			code = BaseA // placeholder bits under the exception
		}
		p.data[i>>2] |= code << uint((i&3)*2)
	}
	return p, nil
}

// Len returns the sequence length in bases.
func (p Packed) Len() int { return p.n }

// Base returns the symbol at position i.
func (p Packed) Base(i int) byte {
	if i < 0 || i >= p.n {
		panic("seq: Packed.Base out of range")
	}
	for _, x := range p.nified {
		if int(x) == i {
			return 'N'
		}
		if int(x) > i {
			break
		}
	}
	return SymbolOf(p.data[i>>2] >> uint((i&3)*2))
}

// Unpack reconstructs the textual sequence.
func (p Packed) Unpack() string {
	out := make([]byte, p.n)
	for i := 0; i < p.n; i++ {
		out[i] = SymbolOf(p.data[i>>2] >> uint((i&3)*2))
	}
	for _, x := range p.nified {
		out[x] = 'N'
	}
	return string(out)
}

// Encode serializes the packed sequence; see the type comment for layout.
func (p Packed) Encode() []byte {
	buf := make([]byte, 0, 2*binaryMaxVarint+len(p.nified)*binaryMaxVarint+len(p.data))
	buf = appendUvarint(buf, uint64(p.n))
	buf = appendUvarint(buf, uint64(len(p.nified)))
	prev := uint32(0)
	for _, x := range p.nified {
		buf = appendUvarint(buf, uint64(x-prev))
		prev = x
	}
	return append(buf, p.data...)
}

// Decode is the inverse of Encode.
func Decode(b []byte) (Packed, error) {
	n, k := readUvarint(b)
	if k <= 0 {
		return Packed{}, errors.New("seq: truncated packed sequence header")
	}
	b = b[k:]
	nn, k := readUvarint(b)
	if k <= 0 {
		return Packed{}, errors.New("seq: truncated packed exception count")
	}
	b = b[k:]
	p := Packed{n: int(n)}
	if nn > n {
		return Packed{}, errors.New("seq: more N exceptions than bases")
	}
	var prev uint32
	for i := uint64(0); i < nn; i++ {
		d, k := readUvarint(b)
		if k <= 0 {
			return Packed{}, errors.New("seq: truncated packed exception list")
		}
		b = b[k:]
		prev += uint32(d)
		if int(prev) >= p.n {
			return Packed{}, errors.New("seq: N exception beyond sequence end")
		}
		p.nified = append(p.nified, prev)
	}
	want := (p.n + 3) / 4
	if len(b) < want {
		return Packed{}, fmt.Errorf("seq: packed payload truncated: have %d bytes, want %d", len(b), want)
	}
	p.data = append([]byte(nil), b[:want]...)
	return p, nil
}

// PackedSize returns the encoded size in bytes of a sequence of n bases with
// k N-exceptions, assuming single-byte varints (true for reads under 128bp).
func PackedSize(n, k int) int {
	return 2 + k + (n+3)/4
}

const binaryMaxVarint = 5

func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

func readUvarint(b []byte) (uint64, int) {
	var v uint64
	var s uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c < 0x80 {
			if i > 9 || i == 9 && c > 1 {
				return 0, -(i + 1)
			}
			return v | uint64(c)<<s, i + 1
		}
		v |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}
