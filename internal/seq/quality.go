package seq

import (
	"fmt"
	"math"
)

// Phred quality scores. A quality Q encodes the base-calling error
// probability p as Q = -10*log10(p). FASTQ shifts qualities "into the
// visible ASCII character space" (paper Section 3, Figure 3); we use the
// Sanger/Illumina-1.8 offset of 33.
const (
	PhredOffset = 33
	// MaxQuality is the largest representable score; the paper quotes a
	// value range of 0 to 100 for the logarithmic-transformed error
	// probabilities coming out of image analysis.
	MaxQuality = 93 // '~' - 33, the largest printable encoding
)

// Quality is a single per-base Phred score.
type Quality uint8

// ErrorProbability converts the score back to the probability that the base
// call is wrong.
func (q Quality) ErrorProbability() float64 {
	return math.Pow(10, -float64(q)/10)
}

// QualityFromProbability converts an error probability into the nearest
// Phred score, clamped to [0, MaxQuality].
func QualityFromProbability(p float64) Quality {
	if p <= 0 {
		return MaxQuality
	}
	q := -10 * math.Log10(p)
	if q < 0 {
		q = 0
	}
	if q > MaxQuality {
		q = MaxQuality
	}
	return Quality(math.Round(q))
}

// EncodeQualities converts raw scores to the printable FASTQ representation.
func EncodeQualities(qs []Quality) string {
	out := make([]byte, len(qs))
	for i, q := range qs {
		if q > MaxQuality {
			q = MaxQuality
		}
		out[i] = byte(q) + PhredOffset
	}
	return string(out)
}

// DecodeQualities parses the printable FASTQ representation back into raw
// scores. It rejects characters below the offset, which indicate either a
// corrupt file or a different (Solexa-64) encoding.
func DecodeQualities(s string) ([]Quality, error) {
	out := make([]Quality, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] < PhredOffset {
			return nil, fmt.Errorf("seq: quality character %q below Phred+33 range at position %d", s[i], i)
		}
		out[i] = Quality(s[i] - PhredOffset)
	}
	return out, nil
}

// AverageQuality returns the mean score of an encoded quality string, used
// by quality-control filters. Returns 0 for an empty string.
func AverageQuality(encoded string) float64 {
	if len(encoded) == 0 {
		return 0
	}
	sum := 0
	for i := 0; i < len(encoded); i++ {
		q := int(encoded[i]) - PhredOffset
		if q < 0 {
			q = 0
		}
		sum += q
	}
	return float64(sum) / float64(len(encoded))
}
