// Package seq provides the genomic sequence primitives used throughout the
// system: the DNA alphabet, compact 2-bit packed sequences (the "domain
// specific short-read data type" that Section 5.1.2 of the paper proposes),
// Phred quality scores, and small utilities such as reverse complement and
// GC content.
package seq

// Base codes. The packed representation stores A, C, G, T in 2 bits; N (an
// uncertain call) cannot be packed and is tracked separately by callers that
// need it (see Packed).
const (
	BaseA = 0
	BaseC = 1
	BaseG = 2
	BaseT = 3
)

// Alphabet is the set of unambiguous DNA symbols in code order.
const Alphabet = "ACGT"

// CodeOf returns the 2-bit code for an unambiguous base symbol and ok=false
// for anything else (including 'N'); lowercase symbols are accepted.
func CodeOf(b byte) (code byte, ok bool) {
	switch b {
	case 'A', 'a':
		return BaseA, true
	case 'C', 'c':
		return BaseC, true
	case 'G', 'g':
		return BaseG, true
	case 'T', 't':
		return BaseT, true
	}
	return 0, false
}

// SymbolOf is the inverse of CodeOf for valid codes 0..3.
func SymbolOf(code byte) byte {
	return Alphabet[code&3]
}

// IsValid reports whether every symbol of s is an A/C/G/T/N (case
// insensitive). This is the validity rule of the FASTQ files the paper works
// with: reads may contain uncertain 'N' calls but nothing else.
func IsValid(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case 'A', 'C', 'G', 'T', 'N', 'a', 'c', 'g', 't', 'n':
		default:
			return false
		}
	}
	return true
}

// HasN reports whether the sequence contains at least one uncertain 'N'
// call. Query 1 of the paper filters these out with
// CHARINDEX('N', short_read_seq) = 0.
func HasN(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == 'N' || s[i] == 'n' {
			return true
		}
	}
	return false
}

// Complement returns the Watson-Crick complement of a single symbol.
// 'N' (and anything unrecognized) complements to 'N'.
func Complement(b byte) byte {
	switch b {
	case 'A', 'a':
		return 'T'
	case 'C', 'c':
		return 'G'
	case 'G', 'g':
		return 'C'
	case 'T', 't':
		return 'A'
	}
	return 'N'
}

// ReverseComplement returns the reverse complement of s as a new string.
// Alignments on the reverse strand store the reverse complement of the read
// so that all alignment records are expressed in reference coordinates.
func ReverseComplement(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		out[len(s)-1-i] = Complement(s[i])
	}
	return string(out)
}

// GCContent returns the fraction of G/C symbols among the unambiguous
// symbols of s, and 0 for an empty or all-N sequence.
func GCContent(s string) float64 {
	gc, acgt := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case 'G', 'g', 'C', 'c':
			gc++
			acgt++
		case 'A', 'a', 'T', 't':
			acgt++
		}
	}
	if acgt == 0 {
		return 0
	}
	return float64(gc) / float64(acgt)
}

// Hamming returns the number of mismatching positions between two equal
// length sequences; positions where either side is 'N' count as mismatches.
// It panics if the lengths differ, which is a programming error in callers.
func Hamming(a, b string) int {
	if len(a) != len(b) {
		panic("seq: Hamming on sequences of different length")
	}
	d := 0
	for i := 0; i < len(a); i++ {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}
