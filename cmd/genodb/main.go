// Command genodb is a SQL shell over the engine: it executes statements
// from the command line or stdin against a database directory, with the
// genomics extension functions pre-registered.
//
// Usage:
//
//	genodb -db DIR -e "SELECT ..."      run one statement (repeatable ;-script)
//	genodb -db DIR < script.sql         run a script from stdin
//	genodb -db DIR                      interactive: one statement per line
//
// Run "ANALYZE" (or "ANALYZE TABLE t") after bulk loads: it collects
// per-column histograms and NDV sketches that the planner uses to pick
// join build sides, partition counts and Bloom filters; "EXPLAIN SELECT
// ..." shows the resulting per-node "est=N rows" estimates.
//
// # Secondary indexes & access paths
//
// "CREATE INDEX idx ON t(col)" builds a B-tree over col (a parallel
// sort-based build; existing rows are included, later inserts are
// maintained transactionally) and "DROP INDEX idx ON t" removes it. For
// each predicate of the shape "col op constant" (=, <, <=, >, >=) the
// planner prices three access paths by estimated page I/O and EXPLAIN
// shows which one won:
//
//	|--Index Scan [t] idx (100..200)        B-tree range scan + heap fetch
//	|--Table Scan [t] ... zonemap-pruned(58/564 pages)
//	                                        parallel scan, skipping sealed
//	                                        pages whose min/max zone map
//	                                        excludes the predicate
//	|--Table Scan [t] ... full scan         every page (chosen when the
//	                                        predicate is too wide to pay
//	                                        one heap fetch per index hit)
//
// Zone maps are per-page min/max summaries kept for every sealed heap
// page; they are built at page seal, CHECKPOINT and ANALYZE, cost no
// I/O at query time, and shine on columns correlated with insertion
// order (positions, timestamps). Selective point and narrow-range
// predicates on an indexed column flip to an Index Scan; widen the
// range and EXPLAIN flips back to a (pruned) heap scan. Index scans
// also deliver rows in key order, which the planner feeds to ORDER BY
// (sort elision), ROW_NUMBER and merge joins.
//
// BEGIN / COMMIT / ROLLBACK group statements into one atomic transaction.
// The shell is a single session; other sessions (another genodb on the
// same directory is NOT supported, but embedded users of core.Session
// are) see none of its changes until COMMIT, and its reads come from a
// consistent snapshot taken at BEGIN. DDL (CREATE/DROP TABLE) and
// CHECKPOINT are refused inside a transaction.
//
// # Vectorized execution
//
// Scans, filters, projections, TOP and the exchange run batch-at-a-time
// by default: ~1024-row columnar batches with selection vectors instead
// of one row per operator call. On tables created WITH
// (DATA_COMPRESSION = PAGE), sealed pages keep their dictionary/RLE
// coding into the scan, so predicates like "flow = 'X'" compare small
// integer codes and rows they drop are never decompressed. "EXPLAIN
// SELECT ..." marks batch-capable scan nodes with a trailing
// "vectorized" annotation. Tuning (rarely needed): -batch-size sets the
// rows-per-batch target (core.Options.BatchSize), -no-vectorize forces
// the row-at-a-time path (core.Options.DisableVectorized) — useful for
// comparing the two engines on the same data.
//
// # Durability & recovery
//
// The engine write-ahead logs every change and checkpoints data files
// only at CHECKPOINT (and clean Close). The exact guarantees:
//
//   - A transaction whose COMMIT returned is durable: its commit record
//     was fsynced to db.wal before COMMIT returned (concurrent commits
//     share one group fsync). After a crash — power loss included —
//     reopening the directory replays the log and every such
//     transaction is fully visible.
//   - A transaction that never reached COMMIT (in flight, rolled back,
//     or its COMMIT errored) leaves no rows behind after recovery.
//     Recovery replays only transactions whose commit record is intact
//     in the log.
//   - A torn log tail — the crash interrupted the final write — is
//     detected by record CRCs and sequence numbers and cut off cleanly;
//     it can only ever contain transactions whose COMMIT had not
//     returned. Damage in the MIDDLE of the log (bit rot, a misdirected
//     write) with intact records after it is different: recovery fails
//     with wal.ErrCorruptLog rather than silently dropping committed
//     work. Restore from backup in that case.
//   - Every sealed data page carries a CRC32C checksum, verified when
//     the page is read from disk into the buffer pool. A corrupt page
//     fails the query that touches it with storage.ErrCorruptPage and
//     is counted in ExecStats().Integrity; other tables (and other
//     pages of the same table) remain fully usable, and the database
//     stays open. Databases written by pre-checksum builds open and
//     scan normally — verification keys off each page's version byte.
//
// "genodb -db DIR -verify" scans every table's sealed pages offline and
// reports checksum failures without loading anything into the pool —
// run it after hardware incidents or before archiving a directory.
//
// # Observability
//
// "EXPLAIN ANALYZE SELECT ..." executes the statement with timed
// per-operator instrumentation and prints the plan annotated with what
// actually happened instead of the row results:
//
//	|--Hash Match (Partitioned Inner Join) ... (est=240 rows, actual=210 rows,
//	       off by 1.1x over) time=18.3ms (self 12.1ms)
//	       spill: 1.2 MB in 7 runs (385 rows)
//	       bloom: 3000 checked, 2760 dropped (92.0%)
//	|--Table Scan [reads] ... (est=3000 rows, actual=3000 rows, off by 1.0x)
//	       pool: 112 hits, 10 misses
//
// Every node reports its actual row count against the planner's
// estimate (the "off by Kx under/over" ratio is how far the estimate
// missed — large ratios explain bad plans); nodes that did physical
// work add spill, Bloom-filter and buffer-pool detail lines. "time=" is
// cumulative over the node's subtree; "(self ...)" subtracts the
// children. Plain SELECTs always collect the (cheap, atomic) counters —
// only EXPLAIN ANALYZE adds the clocks.
//
// The engine-wide view:
//
//   - "genodb -db DIR -metrics" prints every registered engine counter
//     as JSON and exits: buffer-pool traffic, WAL fsyncs, per-operator
//     spill totals, Bloom activity, checksum verifications, checkpoint
//     and vacuum runs, planner access-path picks, query counts.
//   - In the shell, "\stats" prints the same registry as a table, and
//     "\hist" shows the recent-query ring (duration, rows, spill bytes
//     per statement).
//   - core.Options.SlowQueryThreshold (flag "-slow-query DURATION")
//     keeps the full rendered profile of every statement at or over the
//     threshold; "\slow" prints the captured profiles. The capture is
//     bounded (the newest 32) and costs nothing for fast statements.
//
// Counter-only instrumentation is always on and costs well under the
// noise floor of a scan (the obs benchmark gates it at <3%);
// "-no-instrument" (core.Options.DisableInstrumentation) removes even
// that for A/B measurements.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sqltypes"
	"repro/internal/udf"
)

func main() {
	dbDir := flag.String("db", "genodb-data", "database directory")
	exec := flag.String("e", "", "execute this SQL (semicolon-separated script) and exit")
	dop := flag.Int("dop", 0, "degree of parallelism (default: all cores)")
	batchSize := flag.Int("batch-size", 0, "vectorized batch size in rows (default: 1024)")
	noVec := flag.Bool("no-vectorize", false, "disable batch-at-a-time execution (row engine only)")
	verify := flag.Bool("verify", false, "scan all tables, report page-checksum failures, and exit")
	metrics := flag.Bool("metrics", false, "print the engine metrics registry as JSON and exit")
	slowQuery := flag.Duration("slow-query", 0, "capture full profiles of statements at or over this duration (e.g. 250ms; \\slow shows them)")
	noInstr := flag.Bool("no-instrument", false, "disable always-on per-operator counters (A/B measurement only)")
	flag.Parse()

	db, err := core.Open(*dbDir, core.Options{
		DOP:                    *dop,
		BatchSize:              *batchSize,
		DisableVectorized:      *noVec,
		SlowQueryThreshold:     *slowQuery,
		DisableInstrumentation: *noInstr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "genodb:", err)
		os.Exit(1)
	}
	defer db.Close()
	udf.RegisterAll(db)

	if *verify {
		if err := runVerify(db); err != nil {
			fmt.Fprintln(os.Stderr, "genodb:", err)
			os.Exit(1)
		}
		return
	}
	if *metrics {
		if err := printMetricsJSON(db, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "genodb:", err)
			os.Exit(1)
		}
		return
	}
	if *exec != "" {
		if err := runScript(db, *exec, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "genodb:", err)
			os.Exit(1)
		}
		return
	}
	st, _ := os.Stdin.Stat()
	interactive := (st.Mode() & os.ModeCharDevice) != 0
	if interactive {
		fmt.Println("genodb SQL shell - one statement per line, \\q to quit")
		fmt.Println("  tip: run ANALYZE [TABLE t] after loading data; EXPLAIN shows the est=N rows it gives the planner")
		fmt.Println("  tip: BEGIN; ...; COMMIT (or ROLLBACK) makes a multi-statement change atomic")
		fmt.Println("  tip: scans run vectorized (EXPLAIN shows which nodes); CREATE TABLE ... WITH (DATA_COMPRESSION = PAGE) lets filters compare dictionary codes without decompressing")
		fmt.Println("  tip: CREATE INDEX idx ON t(col) speeds up selective predicates; EXPLAIN shows the chosen access path (Index Scan / zonemap-pruned / full scan)")
		fmt.Println("  tip: EXPLAIN ANALYZE SELECT ... runs the query and shows actual rows, per-operator time and spill; \\stats dumps engine counters, \\hist recent queries, \\slow captured slow-query profiles")
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	for {
		if interactive {
			if pending.Len() == 0 {
				fmt.Print("genodb> ")
			} else {
				fmt.Print("   ...> ")
			}
		}
		if !sc.Scan() {
			break
		}
		line := sc.Text()
		if strings.TrimSpace(line) == "\\q" {
			break
		}
		if cmd := strings.TrimSpace(line); pending.Len() == 0 && strings.HasPrefix(cmd, "\\") {
			if err := runShellCommand(db, cmd, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.Contains(line, ";") && interactive {
			continue
		}
		if err := runScript(db, pending.String(), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		pending.Reset()
	}
	if pending.Len() > 0 {
		if err := runScript(db, pending.String(), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
}

func runScript(db *core.Database, sql string, w io.Writer) error {
	if strings.TrimSpace(sql) == "" {
		return nil
	}
	res, err := db.ExecScript(sql)
	if err != nil {
		return err
	}
	if res == nil {
		return nil
	}
	printResult(w, res)
	return nil
}

func printResult(w io.Writer, res *core.Result) {
	if res.Plan != "" {
		fmt.Fprint(w, res.Plan)
		return
	}
	if len(res.Cols) == 0 {
		if res.RowsAffected > 0 {
			fmt.Fprintf(w, "(%d rows affected)\n", res.RowsAffected)
		} else {
			fmt.Fprintln(w, "OK")
		}
		return
	}
	widths := make([]int, len(res.Cols))
	render := make([][]string, len(res.Rows))
	for i, c := range res.Cols {
		if c == "" {
			c = fmt.Sprintf("col%d", i+1)
		}
		widths[i] = len(c)
	}
	for r, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = formatValue(v)
			if len(cells[i]) > widths[i] {
				widths[i] = len(cells[i])
			}
		}
		render[r] = cells
	}
	for i, c := range res.Cols {
		if c == "" {
			c = fmt.Sprintf("col%d", i+1)
		}
		fmt.Fprintf(w, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w)
	for i := range res.Cols {
		fmt.Fprintf(w, "%s  ", strings.Repeat("-", widths[i]))
	}
	fmt.Fprintln(w)
	for _, cells := range render {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(%d rows)\n", len(res.Rows))
}

func formatValue(v sqltypes.Value) string {
	if v.IsNull() {
		return "NULL"
	}
	s := v.String()
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

// runShellCommand handles backslash commands entered at the prompt
// (outside any pending multi-line statement).
func runShellCommand(db *core.Database, cmd string, w io.Writer) error {
	switch cmd {
	case "\\stats":
		vals := db.Metrics()
		names := make([]string, 0, len(vals))
		for n := range vals {
			names = append(names, n)
		}
		sort.Strings(names)
		width := 0
		for _, n := range names {
			if len(n) > width {
				width = len(n)
			}
		}
		for _, n := range names {
			fmt.Fprintf(w, "%-*s  %d\n", width, n, vals[n])
		}
		return nil
	case "\\hist":
		recs := db.QueryHistory()
		if len(recs) == 0 {
			fmt.Fprintln(w, "(no queries recorded)")
			return nil
		}
		for _, r := range recs {
			status := ""
			if r.Err != "" {
				status = "  ERROR: " + r.Err
			}
			spill := ""
			if r.SpillBytes > 0 {
				spill = fmt.Sprintf("  spill=%d B", r.SpillBytes)
			}
			fmt.Fprintf(w, "%-10s  %6d rows%s  %s%s\n",
				r.Duration.Round(time.Microsecond), r.Rows, spill, r.SQL, status)
		}
		return nil
	case "\\slow":
		recs := db.SlowQueries()
		if len(recs) == 0 {
			fmt.Fprintln(w, "(no slow queries captured; set -slow-query DURATION)")
			return nil
		}
		for _, r := range recs {
			fmt.Fprintf(w, "-- %s  %d rows  %s\n", r.Duration.Round(time.Microsecond), r.Rows, r.SQL)
			if r.Profile != "" {
				fmt.Fprint(w, r.Profile)
				if !strings.HasSuffix(r.Profile, "\n") {
					fmt.Fprintln(w)
				}
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q (try \\stats, \\hist, \\slow, \\q)", cmd)
	}
}

// printMetricsJSON dumps the metrics registry as one sorted JSON object,
// the machine-readable twin of the shell's \stats.
func printMetricsJSON(db *core.Database, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(db.Metrics())
}

// runVerify scans every table's sealed pages directly (bypassing the
// buffer pool) and reports per-table checksum results. Returns an error
// when any page fails verification so scripts can gate on the exit code.
func runVerify(db *core.Database) error {
	reports, err := db.VerifyIntegrity()
	if err != nil {
		return err
	}
	bad := 0
	for _, rep := range reports {
		status := "ok"
		if len(rep.Failures) > 0 {
			status = fmt.Sprintf("%d CORRUPT PAGES", len(rep.Failures))
			bad += len(rep.Failures)
		}
		fmt.Printf("%-24s %6d pages checked, %6d unverifiable (pre-checksum or index): %s\n",
			rep.Table, rep.PagesChecked, rep.PagesSkipped, status)
		for _, f := range rep.Failures {
			fmt.Printf("    %s\n", f)
		}
	}
	if bad > 0 {
		return fmt.Errorf("verify: %d corrupt pages found", bad)
	}
	fmt.Println("verify: all page checksums valid")
	return nil
}
