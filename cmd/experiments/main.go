// Command experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md's experiment index) and prints
// paper-style result tables.
//
// Usage:
//
//	experiments                  run everything at the default scale
//	experiments -run table1      one experiment: table1, table2, wrap,
//	                             query1, consensus, plans, ablations
//	experiments -dge-reads N -reseq-reads N   scale knobs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/bench"
)

func main() {
	run := flag.String("run", "all", "experiment: all, table1, table2, wrap, query1, consensus, plans, ablations, join, sortagg, stats, txn, vector, fault, index, obs")
	dgeReads := flag.Int("dge-reads", 400_000, "DGE lane size (level-1 reads)")
	reseqReads := flag.Int("reseq-reads", 150_000, "re-sequencing lane size")
	seed := flag.Int64("seed", 42, "generator seed")
	work := flag.String("work", "", "work directory (default: temp, removed on exit)")
	joinOut := flag.String("join-out", "BENCH_join.json", "output path for the join benchmark JSON")
	sortaggOut := flag.String("sortagg-out", "BENCH_sortagg.json", "output path for the sort/aggregate benchmark JSON")
	sortaggRows := flag.Int("sortagg-rows", 0, "sort/aggregate benchmark table size (0 = default)")
	statsOut := flag.String("stats-out", "BENCH_stats.json", "output path for the statistics benchmark JSON")
	statsRows := flag.Int("stats-rows", 0, "statistics benchmark fact-table size (0 = default)")
	txnOut := flag.String("txn-out", "BENCH_txn.json", "output path for the transaction benchmark JSON")
	txnCount := flag.Int("txn-txns", 0, "transaction benchmark: commits per writer (0 = default)")
	vectorOut := flag.String("vector-out", "BENCH_vector.json", "output path for the vectorized-scan benchmark JSON")
	vectorRows := flag.Int("vector-rows", 0, "vectorized-scan benchmark table size (0 = default)")
	faultOut := flag.String("fault-out", "BENCH_fault.json", "output path for the checksum-overhead benchmark JSON")
	faultRows := flag.Int("fault-rows", 0, "checksum-overhead benchmark table size (0 = default)")
	indexOut := flag.String("index-out", "BENCH_index.json", "output path for the secondary-index benchmark JSON")
	indexRows := flag.Int("index-rows", 0, "secondary-index benchmark table size (0 = default)")
	obsOut := flag.String("obs-out", "BENCH_obs.json", "output path for the instrumentation-overhead benchmark JSON")
	obsRows := flag.Int("obs-rows", 0, "instrumentation-overhead benchmark table size (0 = default)")
	flag.Parse()

	workDir := *work
	if workDir == "" {
		var err error
		workDir, err = os.MkdirTemp("", "experiments-*")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(workDir)
	}
	fmt.Printf("== Reproduction of 'Data Management for High-Throughput Genomics' (CIDR'09) ==\n")
	fmt.Printf("host: %d cores; DGE lane: %d reads; re-sequencing lane: %d reads\n\n",
		runtime.NumCPU(), *dgeReads, *reseqReads)

	want := func(name string) bool { return *run == "all" || *run == name }

	var dge *bench.DGEDataset
	var reseq *bench.ResequencingDataset
	needDGE := want("table1") || want("wrap") || want("query1") || want("plans") || want("ablations")
	needReseq := want("table2") || want("consensus") || want("ablations")
	if needDGE {
		fmt.Printf("building DGE dataset (%d reads)...\n", *dgeReads)
		var err error
		dge, err = bench.BuildDGE(*dgeReads, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %d reads, %d unique tags, %d alignments\n\n", len(dge.Reads), len(dge.Tags), len(dge.Alignments))
	}
	if needReseq {
		fmt.Printf("building re-sequencing dataset (%d reads)...\n", *reseqReads)
		var err error
		reseq, err = bench.Build1000G(*reseqReads, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %d reads, %d alignments\n\n", len(reseq.Reads), len(reseq.Alignments))
	}

	if want("table1") {
		fmt.Println("---- [T1] Table 1: storage efficiency, digital gene expression ----")
		rows, err := bench.StorageExperimentDGE(dge, workDir)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.RenderStorageTable("storage bytes per physical design:", rows))
	}
	if want("table2") {
		fmt.Println("---- [T2] Table 2: storage efficiency, 1000 Genomes ----")
		rows, err := bench.StorageExperiment1000G(reseq, workDir)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.RenderStorageTable("storage bytes per physical design:", rows))
		vc, sq, err := bench.SequenceUDTExperiment(reseq.Reads, workDir)
		if err != nil {
			fail(err)
		}
		fmt.Printf("[X1] SEQUENCE UDT ablation (Section 5.1.2 'bit-encoding ... about a quarter'):\n")
		fmt.Printf("  VARCHAR sequences: %s; SEQUENCE (2-bit packed): %s (%.2fx)\n\n",
			bench.FormatBytes(vc), bench.FormatBytes(sq), float64(sq)/float64(vc))
	}
	if want("wrap") {
		fmt.Println("---- [L52] Section 5.2: FileStream wrapper scan performance ----")
		rows, err := bench.WrapExperiment(dge.ReadsFASTQ, workDir)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.RenderWrapTable(
			fmt.Sprintf("SELECT COUNT(*) over a %s FASTQ FileStream:", bench.FormatBytes(int64(len(dge.ReadsFASTQ)))), rows))
	}
	if want("query1") {
		fmt.Println("---- [Q1/F7/F8] Section 5.3.2: Query 1, script vs declarative SQL ----")
		res, err := bench.Query1Experiment(dge, workDir, runtime.NumCPU())
		if err != nil {
			fail(err)
		}
		fmt.Printf("interpreted script (paper's Perl, 10 min): %8.2fs  [%s]\n",
			res.InterpretedElapsed.Seconds(), res.InterpretedTrace)
		fmt.Printf("same script compiled (Go, ablation)      : %8.2fs\n",
			res.CompiledElapsed.Seconds())
		fmt.Printf("parallel SQL (paper: 44 s)               : %8.2fs  -> speedup %.1fx over interpreted\n",
			res.SQLElapsed.Seconds(), res.Speedup)
		fmt.Printf("buffer pool during SQL run: %.1f%% hit rate (%d hits, %d misses)\n",
			100*res.SQLPoolStats.HitRate(), res.SQLPoolStats.Hits, res.SQLPoolStats.Misses)
		fmt.Printf("unique tags found by all three: %d\n\n", res.UniqueTags)
		fmt.Println("[F7] script CPU profile (one core, read-then-process):")
		fmt.Print(bench.RenderCPUTrace(res.ScriptCPU, 60))
		fmt.Printf("  average cores busy: %.2f\n\n", bench.AverageBusy(res.ScriptCPU))
		fmt.Println("[F8] SQL CPU profile (all cores):")
		fmt.Print(bench.RenderCPUTrace(res.SQLCPU, 60))
		fmt.Printf("  average cores busy: %.2f\n\n", bench.AverageBusy(res.SQLCPU))
		fmt.Println("[F9] Query 1 parallel plan:")
		fmt.Println(res.SQLPlan)
	}
	if want("consensus") {
		fmt.Println("---- [Q3/F10] Section 5.3.3: merge join and consensus calling ----")
		res, err := bench.ConsensusExperiment(reseq, workDir, runtime.NumCPU())
		if err != nil {
			fail(err)
		}
		fmt.Printf("alignments joined with reads (warm pool): %d in %.3fs = %.2fM alignments/s (paper: ~1.6M/s)\n",
			res.Alignments, res.MergeJoinElapsed.Seconds(), res.MergeJoinRate/1e6)
		fmt.Printf("buffer pool during join: %.1f%% hit rate (%d hits, %d misses)\n\n",
			100*res.MergeJoinPoolStats.HitRate(), res.MergeJoinPoolStats.Hits, res.MergeJoinPoolStats.Misses)
		fmt.Println("[F10] merge join plan:")
		fmt.Println(res.MergeJoinPlan)
		fmt.Printf("consensus, pivot plan (Query 3 as written): %.3fs\n", res.PivotElapsed.Seconds())
		fmt.Printf("consensus, sliding-window UDA:              %.3fs  (%.1fx faster)\n",
			res.SlidingElapsed.Seconds(), float64(res.PivotElapsed)/float64(res.SlidingElapsed))
		fmt.Printf("results identical: %v\n\n", res.ConsensusMatch)
		fmt.Println("sliding-window plan:")
		fmt.Println(res.SlidingPlan)
	}
	if want("plans") {
		fmt.Println("---- [F9] plan shapes ----")
		res, err := bench.Query1Experiment(dge, workDir+"/plans", 2)
		if err != nil {
			fail(err)
		}
		fmt.Println("Query 1 plan (parallel hash aggregate + ranking):")
		fmt.Println(res.SQLPlan)
	}
	if want("ablations") {
		fmt.Println("---- design-choice ablations ----")
		sizes := []int{64 << 10, 1 << 20, 8 << 20}
		rows, err := bench.ChunkSizeAblation(dge.ReadsFASTQ, workDir, sizes)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.RenderWrapTable("chunk size of the paging parser:", rows))

		dops := []int{1, 2}
		if runtime.NumCPU() > 2 {
			dops = append(dops, runtime.NumCPU())
		}
		times, err := bench.Query1DOPAblation(dge, workDir, dops)
		if err != nil {
			fail(err)
		}
		fmt.Println("Query 1 by degree of parallelism (warm):")
		keys := make([]int, 0, len(times))
		for k := range times {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		base := times[keys[0]]
		for _, k := range keys {
			fmt.Printf("  DOP %d: %8.3fs (%.2fx)\n", k, times[k].Seconds(), float64(base)/float64(times[k]))
		}
		fmt.Println()
	}
	if want("join") {
		fmt.Println("---- partitioned hash join: DOP scaling, in-memory vs forced spill ----")
		cfg := bench.DefaultJoinBenchConfig()
		res, err := bench.JoinExperiment(filepath.Join(workDir, "join"), cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("build %d rows ⋈ probe %d rows over %d keys (GOMAXPROCS %d)\n",
			res.BuildRows, res.ProbeRows, res.KeySpace, res.GOMAXPROCS)
		render := func(label string, runs []bench.JoinBenchRun) {
			fmt.Printf("%s:\n", label)
			base := runs[0].ElapsedMS
			for _, r := range runs {
				fmt.Printf("  DOP %d: %9.1f ms (%.2fx)  rows=%d spilled_parts=%d recursions=%d\n",
					r.DOP, r.ElapsedMS, base/r.ElapsedMS, r.Rows, r.SpilledPartitions, r.SpillRecursions)
			}
		}
		render("warm in-memory", res.InMemory)
		render(fmt.Sprintf("forced spill (budget %s)", bench.FormatBytes(res.SpillBudget)), res.Spill)
		if err := res.WriteJSON(*joinOut); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n\n", *joinOut)
		fmt.Println("partitioned join plan:")
		fmt.Println(res.Plan)
	}
	if want("sortagg") {
		fmt.Println("---- external sort & spillable aggregate: DOP scaling, in-memory vs forced spill ----")
		cfg := bench.DefaultSortAggBenchConfig()
		if *sortaggRows > 0 {
			cfg.Rows = *sortaggRows
			cfg.KeySpace = *sortaggRows / 4
			cfg.Groups = *sortaggRows / 6
		}
		res, err := bench.SortAggExperiment(filepath.Join(workDir, "sortagg"), cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d rows, %d sort keys, %d groups (GOMAXPROCS %d)\n",
			res.Rows, res.KeySpace, res.Groups, res.GOMAXPROCS)
		render := func(label string, runs []bench.SortAggRun) {
			fmt.Printf("%s:\n", label)
			base := runs[0].ElapsedMS
			for _, r := range runs {
				fmt.Printf("  DOP %d: %9.1f ms (%.2fx)  rows=%d sort_runs=%d sort_spilled=%s agg_parts=%d agg_rows=%d\n",
					r.DOP, r.ElapsedMS, base/r.ElapsedMS, r.Rows, r.SortRuns,
					bench.FormatBytes(r.SortSpilledBytes), r.AggSpilledPartitions, r.AggSpilledRows)
			}
		}
		render("ORDER BY, warm in-memory", res.SortInMemory)
		render(fmt.Sprintf("ORDER BY, forced spill (budget %s)", bench.FormatBytes(res.SortSpillBudget)), res.SortSpill)
		render("GROUP BY, warm in-memory", res.AggInMemory)
		render(fmt.Sprintf("GROUP BY, forced spill (budget %s)", bench.FormatBytes(res.AggSpillBudget)), res.AggSpill)
		if err := res.WriteJSON(*sortaggOut); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n\n", *sortaggOut)
		fmt.Println("parallel sort plan:")
		fmt.Println(res.SortPlan)
		fmt.Println("partial/final aggregate plan:")
		fmt.Println(res.AggPlan)
	}
	if want("stats") {
		fmt.Println("---- table statistics: ANALYZE-driven build side, Bloom filter, spill pre-partitioning ----")
		cfg := bench.DefaultStatsBenchConfig()
		if *statsRows > 0 {
			cfg.BigRows = *statsRows
			cfg.DimRows = *statsRows / 5
			cfg.KeySpace = *statsRows / 2
			cfg.FilterBound = int64(*statsRows / 40)
			cfg.JoinMemoryBudget = int64(cfg.DimRows) * 140 / 5 // wrong build side ~5x over budget
		}
		res, err := bench.StatsExperiment(filepath.Join(workDir, "stats"), cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("big %d rows (filter v < %d) ⋈ dim %d rows over %d keys, join budget %s (GOMAXPROCS %d)\n",
			res.BigRows, res.FilterBound, res.DimRows, res.KeySpace,
			bench.FormatBytes(res.JoinMemoryBudget), res.GOMAXPROCS)
		fmt.Printf("ANALYZE (both tables): %.1f ms\n", res.AnalyzeMS)
		for _, r := range res.Runs {
			fmt.Printf("  analyzed=%-5v bloom=%-5v DOP %d: %9.1f ms  rows=%d bloom_drops=%d spilled_parts=%d spilled_probe=%d\n",
				r.Analyzed, r.Bloom, r.DOP, r.ElapsedMS, r.Rows, r.BloomDrops, r.SpilledPartitions, r.SpilledProbeRows)
		}
		fmt.Printf("DOP-%d speedups: build-side flip %.2fx, bloom %.2fx\n",
			maxOf(cfg.DOPs), res.BuildFlipSpeedupDOP4, res.BloomSpeedupDOP4)
		if err := res.WriteJSON(*statsOut); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n\n", *statsOut)
		fmt.Println("plan before ANALYZE:")
		fmt.Println(res.PlanBefore)
		fmt.Println("plan after ANALYZE:")
		fmt.Println(res.PlanAfter)
	}
	if want("txn") {
		fmt.Println("---- MVCC transactions: pipelined group commit, snapshot scans under write load ----")
		cfg := bench.DefaultTxnBenchConfig()
		if *txnCount > 0 {
			cfg.TxnsPerWriter = *txnCount
		}
		res, err := bench.TxnExperiment(filepath.Join(workDir, "txn"), cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d txns/writer x %d rows/txn, concurrent COUNT(*) reader (GOMAXPROCS %d)\n",
			res.TxnsPerWriter, res.BatchRows, res.GOMAXPROCS)
		for _, r := range res.Runs {
			fmt.Printf("  writers %d: %8.0f commits/s  (%d commits in %.1f ms, %.2f fsyncs/commit, %d scans @ %.2f ms)\n",
				r.Writers, r.CommitsPerSec, r.Commits, r.ElapsedMS, r.SyncsPerCommit, r.Scans, r.MeanScanMS)
		}
		fmt.Printf("best multi-writer speedup vs 1 writer: %.2fx\n", res.SpeedupBest)
		if err := res.WriteJSON(*txnOut); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n\n", *txnOut)
	}
	if want("vector") {
		fmt.Println("---- vectorized batch execution: row vs batch filter scan, compressed vs decompressed predicates ----")
		cfg := bench.DefaultVectorBenchConfig()
		if *vectorRows > 0 {
			cfg.Rows = *vectorRows
		}
		res, err := bench.VectorExperiment(filepath.Join(workDir, "vector"), cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d rows, %d-entry flowcell dictionary, DOP 1, best of %d (GOMAXPROCS %d)\n",
			res.Rows, res.Flows, res.Iters, res.GOMAXPROCS)
		for _, r := range res.Runs {
			fmt.Printf("  %-10s %-4s: %9.1f ms  %7.2fM rows/s  matches=%d batches=%d cells_decoded=%d dict_entries=%d\n",
				r.Engine, r.Compression, r.ElapsedMS, r.RowsPerSec/1e6,
				r.Matches, r.Batches, r.ValuesDecoded, r.DictEntriesDecoded)
		}
		fmt.Printf("vectorized over row (dictionary pages): %.2fx; code-compare over decoded-compare: %.2fx\n",
			res.SpeedupVectorized, res.SpeedupCompressed)
		if err := res.WriteJSON(*vectorOut); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n\n", *vectorOut)
		fmt.Println("vectorized filter-scan plan:")
		fmt.Println(res.PlanVectorized)
	}
	if want("fault") {
		fmt.Println("---- page-checksum overhead: warm (pool hits) vs cold (verified misses) vectorized scan ----")
		cfg := bench.DefaultFaultBenchConfig()
		if *faultRows > 0 {
			cfg.Rows = *faultRows
		}
		res, err := bench.FaultExperiment(filepath.Join(workDir, "fault"), cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d rows, DOP 1, best of %d (GOMAXPROCS %d)\n", res.Rows, res.Iters, res.GOMAXPROCS)
		for _, r := range res.Runs {
			fmt.Printf("  checksums=%-5v: warm %8.2f ms   cold %8.2f ms   pages_verified=%d matches=%d\n",
				r.Checksums, r.WarmMS, r.ColdMS, r.PagesVerified, r.Matches)
		}
		fmt.Printf("warm overhead %.2f%% (budget < 3%%); cold (every page CRC-verified) %.2f%%\n",
			res.WarmOverheadPct, res.ColdOverheadPct)
		if err := res.WriteJSON(*faultOut); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n\n", *faultOut)
	}
	if want("obs") {
		fmt.Println("---- always-on instrumentation overhead: warm vectorized scan, counters on vs off ----")
		cfg := bench.DefaultObsBenchConfig()
		if *obsRows > 0 {
			cfg.Rows = *obsRows
		}
		res, err := bench.ObsExperiment(filepath.Join(workDir, "obs"), cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d rows, DOP 1, best of %d (GOMAXPROCS %d)\n", res.Rows, res.Iters, res.GOMAXPROCS)
		for _, r := range res.Runs {
			fmt.Printf("  instrumented=%-5v: warm %8.2f ms   probe_spill=%d B  query_count=%d  matches=%d\n",
				r.Instrumented, r.WarmMS, r.ProbeSpillBytes, r.QueryCount, r.Matches)
		}
		fmt.Printf("warm overhead %.2f%% (budget < 3%%)\n", res.WarmOverheadPct)
		if err := res.WriteJSON(*obsOut); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n\n", *obsOut)
	}
	if want("index") {
		fmt.Println("---- secondary index & zone maps: point/range probes vs DOP-4 heap scan ----")
		cfg := bench.DefaultIndexBenchConfig()
		if *indexRows > 0 {
			cfg.Rows = *indexRows
		}
		res, err := bench.IndexExperiment(filepath.Join(workDir, "index"), cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d rows, DOP 4, best of %d (GOMAXPROCS %d); CREATE INDEX build: %.1f ms\n",
			res.Rows, res.Iters, res.GOMAXPROCS, res.BuildMS)
		for _, q := range res.Queries {
			fmt.Printf("  %-15s: heap %9.3f ms   indexed %9.3f ms  (%.1fx)  matches=%d  [%s]\n",
				q.Name, q.HeapMS, q.IndexMS, q.Speedup, q.Matches, q.Path)
		}
		fmt.Printf("point lookup speedup %.1fx (floor 10x); zone maps skipped %.1f%% of pages (%d/%d kept, floor 50%%)\n",
			res.PointSpeedup, res.ZoneSkipPct, res.ZonePagesKept, res.ZonePagesTotal)
		if err := res.WriteJSON(*indexOut); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n\n", *indexOut)
		fmt.Println("point-lookup plan (indexed side):")
		fmt.Println(res.PointPlan)
	}
	fmt.Println(strings.Repeat("=", 60))
	fmt.Println("done")
}

func maxOf(ns []int) int {
	m := 0
	for _, n := range ns {
		if n > m {
			m = n
		}
	}
	return m
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
