// Command seqgen generates the synthetic datasets of the paper's two
// scenarios as ordinary files: a reference genome (FASTA), level-1 short
// reads (FASTQ) and level-2 alignments (tab-separated text), for either
// the digital-gene-expression or the re-sequencing workload.
//
// Usage:
//
//	seqgen -mode dge   -reads 100000 -out DIR
//	seqgen -mode reseq -reads 100000 -out DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/fastq"
	"repro/internal/gen"
)

func main() {
	mode := flag.String("mode", "dge", "dataset kind: dge or reseq")
	reads := flag.Int("reads", 100_000, "number of level-1 reads to generate")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "seqgen-out", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	switch *mode {
	case "dge":
		ds, err := bench.BuildDGE(*reads, *seed)
		if err != nil {
			fail(err)
		}
		writeFile(filepath.Join(*out, "lane.fastq"), ds.ReadsFASTQ)
		writeFasta(filepath.Join(*out, "reference.fasta"), ds.Genome)
		writeFile(filepath.Join(*out, "tags.txt"), bench.RenderTagsFile(ds.Tags))
		writeFile(filepath.Join(*out, "alignments.txt"), bench.RenderAlignmentsFile(ds.Alignments))
		writeFile(filepath.Join(*out, "expression.txt"), bench.RenderExpressionFile(ds.Expression))
		fmt.Printf("dge dataset: %d reads, %d unique tags, %d alignments, %d expressed genes\n",
			len(ds.Reads), len(ds.Tags), len(ds.Alignments), len(ds.Expression))
	case "reseq":
		ds, err := bench.Build1000G(*reads, *seed)
		if err != nil {
			fail(err)
		}
		writeFile(filepath.Join(*out, "lane.fastq"), ds.ReadsFASTQ)
		writeFasta(filepath.Join(*out, "reference.fasta"), ds.Genome)
		writeFile(filepath.Join(*out, "alignments.txt"), bench.RenderAlignmentsFile(ds.Alignments))
		fmt.Printf("reseq dataset: %d reads, %d alignments over %d bp reference\n",
			len(ds.Reads), len(ds.Alignments), ds.Genome.TotalLength())
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
	fmt.Println("wrote", *out)
}

func writeFile(path string, data []byte) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fail(err)
	}
}

func writeFasta(path string, g *gen.Genome) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	w := fastq.NewFastaWriter(f)
	for _, c := range g.Chroms {
		if err := w.Write(fastq.FastaRecord{Name: c.Name, Seq: c.Seq}); err != nil {
			fail(err)
		}
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "seqgen:", err)
	os.Exit(1)
}
